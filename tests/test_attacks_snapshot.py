"""SnapShot locality-vector attack, plus the SAAM structural attack."""

import numpy as np
import pytest

from repro.attacks import SaamAttack, SnapShotAttack
from repro.attacks.snapshot import locality_vector
from repro.circuits import load_circuit
from repro.locking import DMuxLocking, RandomLogicLocking


def test_locality_vector_shape_and_determinism(rll_locked):
    keygate = rll_locked.insertions[0].keygate
    vec = locality_vector(rll_locked.netlist, keygate, size=12)
    assert vec.shape == (12 * 14,)  # 12 slots x (12 types + fanin + fanout)
    assert np.array_equal(
        vec, locality_vector(rll_locked.netlist, keygate, size=12)
    )
    # Slot 0 encodes the key gate itself: exactly one type bit set.
    assert vec[:12].sum() == 1.0


def test_locality_vector_distinguishes_xor_xnor(rll_locked):
    by_type = {}
    for rec in rll_locked.insertions:
        vec = locality_vector(rll_locked.netlist, rec.keygate, size=8)
        by_type.setdefault(rec.key_bit, []).append(vec[:12])
    if len(by_type) == 2:
        xor_slot = np.stack(by_type[0]).mean(axis=0)
        xnor_slot = np.stack(by_type[1]).mean(axis=0)
        assert not np.allclose(xor_slot, xnor_slot), (
            "keygate type must be visible in slot 0"
        )


def test_snapshot_cracks_rll():
    """On naive (unsynthesised) RLL the key-gate type leaks the bit."""
    circuit = load_circuit("rand_200_6")
    locked = RandomLogicLocking().lock(circuit, 16, seed_or_rng=4)
    report = SnapShotAttack(n_relock_bits=24).run(locked, seed_or_rng=8)
    assert report.extra["n_sites"] == 16
    assert report.accuracy >= 0.9, f"SnapShot should crack RLL: {report.accuracy}"


def test_snapshot_no_sites_on_dmux(dmux_locked):
    report = SnapShotAttack().run(dmux_locked, seed_or_rng=1)
    assert report.extra["n_sites"] == 0
    assert report.accuracy == 0.5, "no XOR/XNOR key gates -> no information"


def test_snapshot_threshold_abstains():
    circuit = load_circuit("rand_120_2")
    locked = RandomLogicLocking().lock(circuit, 8, seed_or_rng=2)
    report = SnapShotAttack(threshold=1e9).run(locked, seed_or_rng=3)
    assert report.score.coverage == 0.0


# ------------------------------------------------------------------- SAAM
def test_saam_kind_read_cracks_rll(rll_locked):
    """XOR/XNOR key-gate kinds leak the key outright (snapshot pin)."""
    report = SaamAttack().run(rll_locked)
    assert report.extra["n_sites"] == 0  # no MUX sites on RLL
    assert report.extra["n_keygate_sites"] == 8
    assert report.accuracy == 1.0


def test_saam_undecided_on_dmux_shared(dmux_locked):
    """D-MUX shared pairs are structurally symmetric: every margin ties,
    SAAM abstains on every bit (snapshot pin — the 0.5 floor)."""
    report = SaamAttack().run(dmux_locked)
    assert report.extra["n_sites"] == 16
    assert report.extra["n_keygate_sites"] == 0
    assert report.accuracy == 0.5
    assert report.score.coverage == 0.0


def test_saam_deterministic(dmux_locked):
    a = SaamAttack().run(dmux_locked)
    b = SaamAttack().run(dmux_locked)
    assert a.guesses == b.guesses
    assert a.extra["margins"] == b.extra["margins"]


def test_saam_kind_read_off_is_blind_on_rll(rll_locked):
    report = SaamAttack(kind_read=False).run(rll_locked)
    assert report.extra["n_keygate_sites"] == 0
    assert report.accuracy == 0.5


def test_relocking_skips_key_wires():
    """Regression: re-locking a locked design must not cut key nets."""
    circuit = load_circuit("rand_150_3")
    first = RandomLogicLocking().lock(circuit, 8, seed_or_rng=5)
    second = RandomLogicLocking(key_prefix="k2_").lock(
        first.netlist, 8, seed_or_rng=6
    )
    for rec in second.insertions:
        assert rec.locked_signal not in first.netlist.key_inputs
    # Both keys together still unlock.
    from repro.sim import check_equivalence

    combined = dict(second.key)
    combined.update(dict(first.key))
    res = check_equivalence(
        circuit, second.netlist, key_right=combined, n_random=512, seed_or_rng=7
    )
    assert res.equal
