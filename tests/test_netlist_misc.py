"""Verilog writer, validation, statistics."""

import pytest

from repro.errors import NetlistError
from repro.netlist import (
    GateType,
    Netlist,
    compute_stats,
    validate_netlist,
    write_verilog,
)
from repro.netlist.validate import dangling_signals
from repro.netlist.verilog import write_verilog_file


# ---------------------------------------------------------------- verilog
def test_verilog_structure(c17):
    text = write_verilog(c17)
    assert "module c17(" in text
    assert text.count("input ") == 5
    assert text.count("output ") == 2
    assert "nand g" in text
    assert text.strip().endswith("endmodule")


def test_verilog_mux_and_const():
    n = Netlist("m")
    n.add_input("s")
    n.add_input("a")
    n.add_input("b")
    n.add_gate("one", GateType.CONST1, [])
    n.add_gate("z", GateType.MUX, ["s", "a", "b"])
    n.add_output("z")
    n.add_output("one")
    text = write_verilog(n)
    assert "assign z = s ? b : a;" in text
    assert "assign one = 1'b1;" in text


def test_verilog_escapes_nonstandard_names():
    n = Netlist("weird")
    n.add_input("a.b[3]")
    n.add_gate("z", GateType.NOT, ["a.b[3]"])
    n.add_output("z")
    text = write_verilog(n)
    assert "\\a.b[3] " in text


def test_verilog_key_inputs_commented(dmux_locked):
    text = write_verilog(dmux_locked.netlist)
    assert "// key input" in text


def test_verilog_file(tmp_path, c17):
    path = tmp_path / "c17.v"
    write_verilog_file(c17, path)
    assert path.read_text().startswith("//")


# ---------------------------------------------------------------- validate
def test_validate_ok(c17):
    validate_netlist(c17)


def test_validate_requires_outputs():
    n = Netlist("empty")
    n.add_input("a")
    n.add_gate("g", GateType.NOT, ["a"])
    with pytest.raises(NetlistError, match="no primary outputs"):
        validate_netlist(n)
    validate_netlist(n, require_outputs=False)


def test_validate_catches_corruption(c17):
    # Simulate post-hoc corruption that bypassed add_gate's checks.
    bad = c17.copy()
    from repro.netlist.gates import Gate

    bad.gates["G10"] = Gate("G10", GateType.NAND, ("G1", "ghost"))
    with pytest.raises(NetlistError, match="undefined"):
        validate_netlist(bad)


def test_validate_duplicate_output(c17):
    bad = c17.copy()
    bad.outputs.append("G22")
    with pytest.raises(NetlistError, match="twice"):
        validate_netlist(bad)


def test_dangling_signals(c17):
    assert dangling_signals(c17) == []
    n = c17.copy()
    n.add_gate("dead", GateType.NOT, ["G1"])
    assert dangling_signals(n) == ["dead"]


# ---------------------------------------------------------------- stats
def test_stats_c17(c17):
    stats = compute_stats(c17)
    assert stats.n_inputs == 5
    assert stats.n_outputs == 2
    assert stats.n_gates == 6
    assert stats.depth == 3
    assert stats.gate_type_counts == {"NAND": 6}
    assert stats.avg_fanin == pytest.approx(2.0)
    assert stats.max_fanout >= 2
    assert "c17" in stats.as_row()


def test_stats_empty():
    n = Netlist("void")
    n.add_input("a")
    stats = compute_stats(n)
    assert stats.n_gates == 0
    assert stats.avg_fanin == 0.0
    assert stats.depth == 0
