"""Cross-module integration: the full workflow of Fig. 1 on one circuit.

load circuit → lock (baseline schemes + evolved) → attack with every
attack → metrics → serialise → reload → verify. This is the end-to-end
path a user of the library walks; each step feeds the next.
"""

import pytest

from repro.attacks import MuxLinkAttack, RandomGuessAttack, SatAttack, ScopeAttack
from repro.circuits import load_circuit
from repro.ec import AutoLock, AutoLockConfig
from repro.io import load_locked_design, save_locked_design
from repro.locking import DMuxLocking, RandomLogicLocking
from repro.metrics import corruption_report, overhead_report
from repro.netlist import validate_netlist, write_verilog
from repro.sim import check_equivalence


@pytest.fixture(scope="module")
def circuit():
    return load_circuit("rand_200_42")


@pytest.fixture(scope="module")
def locked_designs(circuit):
    return {
        "rll": RandomLogicLocking().lock(circuit, 12, seed_or_rng=1),
        "dmux": DMuxLocking("shared").lock(circuit, 12, seed_or_rng=1),
    }


def test_all_locked_designs_equivalent_under_key(circuit, locked_designs):
    for name, locked in locked_designs.items():
        validate_netlist(locked.netlist)
        res = check_equivalence(
            circuit, locked.netlist, key_right=dict(locked.key), seed_or_rng=2
        )
        assert res.equal, f"{name}: correct key must restore the function"


def test_attack_matrix_shapes(locked_designs):
    """The canonical attack-vs-scheme result shape from the literature."""
    rll, dmux = locked_designs["rll"], locked_designs["dmux"]

    scope_rll = ScopeAttack().run(rll, seed_or_rng=0)
    scope_dmux = ScopeAttack().run(dmux, seed_or_rng=0)
    assert scope_rll.accuracy == 1.0
    assert scope_dmux.accuracy == 0.5

    muxlink_rll = MuxLinkAttack(predictor="bayes").run(rll, seed_or_rng=0)
    assert muxlink_rll.extra["n_sites"] == 0

    sat_dmux = SatAttack().run(dmux, seed_or_rng=0)
    assert sat_dmux.extra["functional_equivalent"]

    random_dmux = RandomGuessAttack().run(dmux, seed_or_rng=0)
    assert 0.0 <= random_dmux.accuracy <= 1.0


def test_metrics_pipeline(circuit, locked_designs):
    for locked in locked_designs.values():
        oh = overhead_report(
            circuit, locked.netlist, locked.key, locked.scheme, 256, 0
        )
        assert oh.gate_overhead > 0
        cr = corruption_report(locked, n_wrong_keys=3, n_patterns=256, seed_or_rng=0)
        assert cr.correct_key_error == 0.0
        assert cr.mean_random_wrong_error > 0.0


def test_evolved_design_full_cycle(circuit, tmp_path):
    """AutoLock output survives serialisation and keeps every invariant."""
    config = AutoLockConfig(
        key_length=6, population_size=4, generations=2,
        fitness_predictor="bayes", report_predictor="bayes", seed=5,
    )
    result = AutoLock(config).run(circuit)
    locked = result.locked

    # Serialise + reload.
    sidecar = save_locked_design(locked, tmp_path)
    again = load_locked_design(sidecar)
    assert again.netlist.structurally_equal(locked.netlist)

    # Reloaded design still attackable and functionally intact.
    res = check_equivalence(
        circuit, again.netlist, key_right=dict(again.key), seed_or_rng=1
    )
    assert res.equal
    report = MuxLinkAttack(predictor="bayes").run(again, seed_or_rng=2)
    assert report.extra["n_sites"] == 12  # 6 shared-key genes -> 12 MUXes

    # Verilog export of the evolved design is well-formed.
    text = write_verilog(again.netlist)
    assert "endmodule" in text


def test_sat_attack_breaks_evolved_locking(circuit):
    """Evolution targets MuxLink, not the oracle-guided threat model —
    the SAT attack must still succeed (the paper's scoping)."""
    config = AutoLockConfig(
        key_length=5, population_size=4, generations=2,
        fitness_predictor="bayes", report_predictor="bayes", seed=6,
    )
    result = AutoLock(config).run(circuit)
    report = SatAttack().run(result.locked, seed_or_rng=0)
    assert report.extra["status"] == "completed"
    assert report.extra["functional_equivalent"]
