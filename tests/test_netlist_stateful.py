"""Stateful property test: arbitrary mutation sequences keep invariants.

Hypothesis drives random sequences of netlist operations (add input/gate,
rewire, widen, mark output) and checks after every step that the netlist
stays structurally valid, acyclic and self-consistent — the guarantees the
locking transformations and the GA's repair logic rely on.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.errors import NetlistError
from repro.netlist import GateType, Netlist, validate_netlist

_BINARY_TYPES = [GateType.AND, GateType.NAND, GateType.OR, GateType.XOR]


class NetlistMachine(RuleBasedStateMachine):
    def __init__(self) -> None:
        super().__init__()
        self.netlist = Netlist("stateful")
        self.netlist.add_input("seed_input")
        self.counter = 0

    # ------------------------------------------------------------- helpers
    def _fresh(self, prefix: str) -> str:
        self.counter += 1
        return f"{prefix}{self.counter}"

    def _signals(self) -> list[str]:
        return list(self.netlist.signals())

    # --------------------------------------------------------------- rules
    @rule()
    def add_input(self) -> None:
        self.netlist.add_input(self._fresh("in"))

    @rule(data=st.data())
    def add_unary_gate(self, data) -> None:
        src = data.draw(st.sampled_from(self._signals()))
        gtype = data.draw(st.sampled_from([GateType.NOT, GateType.BUF]))
        self.netlist.add_gate(self._fresh("g"), gtype, [src])

    @rule(data=st.data())
    def add_binary_gate(self, data) -> None:
        signals = self._signals()
        a = data.draw(st.sampled_from(signals))
        b = data.draw(st.sampled_from(signals))
        gtype = data.draw(st.sampled_from(_BINARY_TYPES))
        self.netlist.add_gate(self._fresh("g"), gtype, [a, b])

    @precondition(lambda self: len(self.netlist.gates) > 0)
    @rule(data=st.data())
    def rewire_safely(self, data) -> None:
        """Rewire a random pin to a random *non-descendant* source."""
        gate_name = data.draw(st.sampled_from(sorted(self.netlist.gates)))
        gate = self.netlist.gates[gate_name]
        pin = data.draw(st.integers(min_value=0, max_value=len(gate.fanins) - 1))
        candidates = [
            s for s in self._signals()
            if not self.netlist.has_path(gate_name, s)
        ]
        if not candidates:
            return
        new_src = data.draw(st.sampled_from(candidates))
        self.netlist.rewire_pin(gate_name, pin, new_src)

    @precondition(lambda self: len(self.netlist.gates) > 0)
    @rule(data=st.data())
    def widen_nary_gate(self, data) -> None:
        nary = [
            n for n, g in self.netlist.gates.items() if g.gtype in _BINARY_TYPES
        ]
        if not nary:
            return
        gate_name = data.draw(st.sampled_from(sorted(nary)))
        src = data.draw(st.sampled_from(self._signals()))
        if self.netlist.has_path(gate_name, src):
            return
        self.netlist.widen_gate(gate_name, src)

    @precondition(lambda self: len(self.netlist.gates) > 0)
    @rule(data=st.data())
    def mark_output(self, data) -> None:
        candidates = [
            g for g in self.netlist.gates if g not in self.netlist.outputs
        ]
        if candidates:
            self.netlist.add_output(data.draw(st.sampled_from(sorted(candidates))))

    @rule()
    def copy_is_equal_and_independent(self) -> None:
        dup = self.netlist.copy()
        assert dup.structurally_equal(self.netlist)
        dup.add_input(self._fresh("dupin"))
        assert not dup.structurally_equal(self.netlist)

    # ---------------------------------------------------------- invariants
    @invariant()
    def always_valid(self) -> None:
        validate_netlist(self.netlist, require_outputs=False)

    @invariant()
    def topo_order_respects_dependencies(self) -> None:
        order = self.netlist.topological_order()
        position = {name: i for i, name in enumerate(order)}
        for gate in self.netlist.gates.values():
            for src in gate.fanins:
                if src in position:
                    assert position[src] < position[gate.name]

    @invariant()
    def fanouts_match_fanins(self) -> None:
        count_from_fanouts = sum(
            len(v) for v in self.netlist.fanouts().values()
        )
        count_from_fanins = sum(
            len(g.fanins) for g in self.netlist.gates.values()
        )
        assert count_from_fanouts == count_from_fanins

    @invariant()
    def levels_are_consistent(self) -> None:
        levels = self.netlist.levels()
        for gate in self.netlist.gates.values():
            if gate.fanins:
                assert levels[gate.name] == 1 + max(
                    levels[s] for s in gate.fanins
                )


NetlistMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
TestNetlistStateful = NetlistMachine.TestCase


def test_rewire_to_descendant_is_detectable():
    """The machine avoids cycles via has_path; confirm the guard matters."""
    n = Netlist("guard")
    n.add_input("a")
    n.add_gate("g1", GateType.NOT, ["a"])
    n.add_gate("g2", GateType.NOT, ["g1"])
    n.rewire_pin("g1", 0, "g2")  # creates a cycle
    try:
        n.topological_order()
    except NetlistError:
        return
    raise AssertionError("cycle went undetected")
