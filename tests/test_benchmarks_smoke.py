"""Smoke-run every ``benchmarks/bench_e*.py`` entry point on a tiny circuit.

The paper-reproduction benchmarks only used to execute at full scale, so
API drift in the code they exercise surfaced months later at
paper-reproduction time. Each smoke test here imports one bench module,
shrinks its workload knobs (tiny registry circuit, minimal
``REPRO_BENCH_SCALE``, single-element sweep matrices) and calls its
``run_*`` entry point, asserting it still produces a result. Marked
``bench_smoke`` so CI can select them explicitly:

    PYTHONPATH=src python -m pytest -m bench_smoke -q
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

BENCH_DIR = Path(__file__).resolve().parent.parent / "benchmarks"

#: Tiny-but-lockable stand-in for every circuit a bench asks for. Needs
#: enough gates that D-MUX locking at the benches' key lengths can still
#: find insertion sites.
TINY_CIRCUIT = "rand_150_5"

#: (module, entry point) for every benchmark.
BENCH_ENTRY_POINTS = [
    ("bench_e1_headline_accuracy_drop", "run_headline"),
    ("bench_e2_workflow_stages", "run_workflow"),
    ("bench_e3_muxlink_vs_dmux", "run_matrix"),
    ("bench_e3_muxlink_vs_dmux", "run_gnn_spotcheck"),
    ("bench_e4_sat_attack", "run_sat_matrix"),
    ("bench_e5_oracle_less", "run_oracle_less_matrix"),
    ("bench_e6_ga_convergence", "run_convergence"),
    ("bench_e7_operator_ablation", "run_ablation"),
    ("bench_e8_multiobjective", "run_nsga2"),
    ("bench_e9_overhead", "run_overhead"),
    ("bench_e10_functional", "run_functional"),
    ("bench_e11_heuristic_comparison", "run_comparison"),
    ("bench_sweep_throughput", "run_throughput"),
    ("bench_campaign_service", "run_campaign_service"),
    ("bench_async_loop", "run_async_loop"),
    ("bench_async_loop", "run_disabled_telemetry_overhead"),
    ("bench_delta_relock", "run_delta_relock"),
    ("bench_gnn_batch", "run_gnn_batch"),
    ("bench_alphabet_ablation", "run_alphabet_ablation"),
]


def _load_module(name: str, path: Path):
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _load_bench(module_name: str):
    """Import a bench module, resolving its ``import conftest`` to the
    benchmarks/ conftest (pytest owns the ``conftest`` name for the tests/
    tree, so it is swapped in only for the duration of the import)."""
    bench_conftest = _load_module("_bench_conftest", BENCH_DIR / "conftest.py")
    saved = sys.modules.get("conftest")
    sys.modules["conftest"] = bench_conftest
    try:
        return _load_module(f"_smoke_{module_name}", BENCH_DIR / f"{module_name}.py")
    finally:
        if saved is not None:
            sys.modules["conftest"] = saved
        else:
            sys.modules.pop("conftest", None)


@pytest.mark.bench_smoke
@pytest.mark.parametrize("module_name,entry", BENCH_ENTRY_POINTS)
def test_bench_entry_point_smoke(module_name, entry, monkeypatch):
    import repro.api.runner as api_runner
    from repro.circuits import load_circuit

    monkeypatch.setenv("REPRO_BENCH_SCALE", "0.1")
    tiny = load_circuit(TINY_CIRCUIT)
    module = _load_bench(module_name)

    # The benches route circuit resolution through the declarative
    # runner's single load point; a few also load directly for staging.
    # Route every path to the tiny stand-in.
    monkeypatch.setattr(api_runner, "load_circuit", lambda name: tiny.copy())
    if hasattr(module, "load_circuit"):
        monkeypatch.setattr(
            module, "load_circuit", lambda name: tiny.copy(), raising=True
        )
    # Shrink the sweep matrices the modules expose as knobs.
    if hasattr(module, "_CIRCUITS"):
        monkeypatch.setattr(module, "_CIRCUITS", module._CIRCUITS[:1])
    if hasattr(module, "_KEYS"):
        monkeypatch.setattr(module, "_KEYS", [8])
    if hasattr(module, "_VARIANTS"):
        monkeypatch.setattr(module, "_VARIANTS", module._VARIANTS[:2])

    result = getattr(module, entry)()
    assert result is not None, f"{module_name}.{entry} returned nothing"
    if isinstance(result, list):
        assert result, f"{module_name}.{entry} produced an empty result"
