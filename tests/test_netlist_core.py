"""Netlist container: construction, mutation, graph queries."""

import pytest

from repro.errors import NetlistError
from repro.netlist import GateType, Netlist


def build_chain() -> Netlist:
    n = Netlist("chain")
    n.add_input("a")
    n.add_input("b")
    n.add_gate("g1", GateType.AND, ["a", "b"])
    n.add_gate("g2", GateType.NOT, ["g1"])
    n.add_gate("g3", GateType.OR, ["g2", "a"])
    n.add_output("g3")
    return n


def test_signal_accounting():
    n = build_chain()
    assert len(n) == 3
    assert set(n.signals()) == {"a", "b", "g1", "g2", "g3"}
    assert "g1" in n and "nope" not in n
    assert n.all_inputs == ["a", "b"]


def test_duplicate_names_rejected():
    n = build_chain()
    with pytest.raises(NetlistError):
        n.add_input("a")
    with pytest.raises(NetlistError):
        n.add_gate("g1", GateType.NOT, ["a"])
    with pytest.raises(NetlistError):
        n.add_key_input("g2")
    with pytest.raises(NetlistError):
        n.add_input("")


def test_unknown_fanin_rejected():
    n = build_chain()
    with pytest.raises(NetlistError):
        n.add_gate("g4", GateType.NOT, ["ghost"])


def test_output_rules():
    n = build_chain()
    with pytest.raises(NetlistError):
        n.add_output("ghost")
    with pytest.raises(NetlistError):
        n.add_output("g3")  # already an output
    n.add_output("g1")
    assert n.outputs == ["g3", "g1"]


def test_topological_order_and_cache_invalidation():
    n = build_chain()
    order = n.topological_order()
    assert order.index("g1") < order.index("g2") < order.index("g3")
    n.add_gate("g4", GateType.NOT, ["g3"])
    assert "g4" in n.topological_order()


def test_cycle_detection():
    n = build_chain()
    # Rewire g1's input to g3, creating g1 -> g2 -> g3 -> g1.
    n.rewire_pin("g1", 0, "g3")
    with pytest.raises(NetlistError, match="cycle"):
        n.topological_order()


def test_fanouts_and_counts():
    n = build_chain()
    fo = n.fanouts()
    assert ("g1", 0) in fo["a"] or ("g3", 1) in fo["a"]
    assert n.fanout_count("a") == 2
    assert n.fanout_count("g3") == 0


def test_rewire_and_replace():
    n = build_chain()
    n.rewire_pin("g3", 1, "b")
    assert n.gates["g3"].fanins == ("g2", "b")
    count = n.replace_fanin("g1", "a", "b")
    assert count == 1
    assert n.gates["g1"].fanins == ("b", "b")
    with pytest.raises(NetlistError):
        n.replace_fanin("g1", "ghost", "a")
    with pytest.raises(NetlistError):
        n.rewire_pin("ghost", 0, "a")
    with pytest.raises(NetlistError):
        n.rewire_pin("g1", 0, "ghost")


def test_remove_gate_rules():
    n = build_chain()
    with pytest.raises(NetlistError, match="drives"):
        n.remove_gate("g1")
    with pytest.raises(NetlistError, match="output"):
        n.remove_gate("g3")
    n.add_gate("dead", GateType.NOT, ["a"])
    n.remove_gate("dead")
    assert "dead" not in n
    with pytest.raises(NetlistError):
        n.remove_gate("dead")


def test_levels_and_depth():
    n = build_chain()
    levels = n.levels()
    assert levels["a"] == 0 and levels["g1"] == 1
    assert levels["g2"] == 2 and levels["g3"] == 3
    assert n.depth() == 3


def test_has_path():
    n = build_chain()
    assert n.has_path("a", "g3")
    assert n.has_path("g1", "g2")
    assert not n.has_path("g3", "a")
    assert n.has_path("a", "a"), "src == dst counts as reachable"
    with pytest.raises(NetlistError):
        n.has_path("ghost", "a")


def test_transitive_fanin():
    n = build_chain()
    assert n.transitive_fanin("g3") == {"a", "b", "g1", "g2"}
    assert n.transitive_fanin("a") == set()


def test_copy_independence():
    n = build_chain()
    dup = n.copy("dup")
    dup.add_gate("extra", GateType.NOT, ["a"])
    dup.rewire_pin("g3", 1, "b")
    assert "extra" not in n
    assert n.gates["g3"].fanins == ("g2", "a")
    assert dup.name == "dup"


def test_structural_equality():
    a, b = build_chain(), build_chain()
    assert a.structurally_equal(b)
    b.rewire_pin("g3", 1, "b")
    assert not a.structurally_equal(b)


def test_fresh_name():
    n = build_chain()
    assert n.fresh_name("new") == "new"
    assert n.fresh_name("g1") == "g1_0"
    n.add_gate("g1_0", GateType.NOT, ["a"])
    assert n.fresh_name("g1") == "g1_1"


def test_to_networkx():
    g = build_chain().to_networkx()
    assert g.number_of_nodes() == 5
    assert g.nodes["a"]["kind"] == "input"
    assert g.nodes["g1"]["gtype"] == "AND"
    assert g.has_edge("g2", "g3")
    assert g["a"]["g1"]["pin"] == 0
