"""Distributed sweep execution: scheduler, workers, resume semantics.

The contract under test (ISSUE 3 acceptance): a sweep distributed across
>= 2 worker processes on a shared SQLite store yields records
byte-identical (after nondeterministic-field stripping) to the serial
``run_sweep``, and a killed sweep resumes with zero re-evaluation of
already-completed points.
"""

from __future__ import annotations

import json

import pytest

from repro.api import ExperimentSpec, SweepSpec, run_sweep
from repro.api.runner import EXPERIMENT_NAMESPACE
from repro.dist import SweepScheduler, Worker
from repro.dist.scheduler import _record_key
from repro.errors import StoreError
from repro.store import SQLiteStore, ensure_queue


def _static_sweep(cache_path, n_points: int = 3) -> SweepSpec:
    return SweepSpec(
        name="dist_static",
        base=ExperimentSpec(
            circuit="rand_150_5",
            key_length=4,
            scheme="dmux",
            attack="muxlink",
            attack_params={"predictor": "bayes"},
            seed=1,
        ),
        axes={"key_length": [4, 6, 8][:n_points]},
        cache_path=str(cache_path),
    )


def _engine_sweep(cache_path) -> SweepSpec:
    return SweepSpec(
        name="dist_engine",
        base=ExperimentSpec(
            circuit="rand_100_9",
            key_length=4,
            attack="muxlink",
            attack_params={"predictor": "bayes"},
            engine="ga",
            engine_params={"population_size": 4, "generations": 2},
        ),
        axes={"seed": [0, 1]},
        cache_path=str(cache_path),
    )


def _stripped(results) -> list[str]:
    return [
        json.dumps(r.deterministic_record(), sort_keys=True) for r in results
    ]


# ------------------------------------------------- serial equivalence
def test_distributed_static_sweep_matches_serial_byte_for_byte(tmp_path):
    serial = run_sweep(_static_sweep(tmp_path / "serial.json"))
    dist = run_sweep(_static_sweep(tmp_path / "dist.sqlite"), distributed=2)
    assert _stripped(serial.results) == _stripped(dist.results)
    assert dist.fresh_evaluations == serial.fresh_evaluations == 3
    assert dist.distributed["workers"] == 2
    assert dist.distributed["completed_this_run"] == 3


def test_distributed_engine_sweep_matches_serial_byte_for_byte(tmp_path):
    serial = run_sweep(_engine_sweep(tmp_path / "serial.json"))
    dist = run_sweep(_engine_sweep(tmp_path / "dist.sqlite"), distributed=2)
    assert _stripped(serial.results) == _stripped(dist.results)
    # Engine records must still carry the champion for rebuild_locked.
    rebuilt = dist.results[0].rebuild_locked()
    assert rebuilt.key.bits == serial.results[0].rebuild_locked().key.bits


def test_distributed_warm_resume_reports_zero_fresh(tmp_path):
    sweep = _static_sweep(tmp_path / "dist.sqlite")
    cold = run_sweep(sweep, distributed=2)
    assert cold.fresh_evaluations == 3
    warm = run_sweep(sweep, distributed=2)
    assert warm.fresh_evaluations == 0, "warm resume must replay everything"
    assert warm.n_from_cache == 3
    assert warm.distributed["completed_this_run"] == 0


def test_distributed_artifacts_written(tmp_path):
    from repro.api import read_manifest, read_results

    out = tmp_path / "arts"
    result = run_sweep(
        _static_sweep(tmp_path / "dist.sqlite"), distributed=2, out_dir=out
    )
    records = read_results(out)
    manifest = read_manifest(out)
    assert len(records) == 3
    assert [r["fingerprint"] for r in records] == [
        r.fingerprint for r in result.results
    ], "artifact order must follow the deterministic expansion order"
    assert manifest["distributed"]["workers"] == 2
    assert manifest["n_points"] == 3


# ------------------------------------------------------- crash + resume
def test_killed_sweep_resumes_with_zero_recomputation(tmp_path):
    """Kill after one point; the resume must not re-run that point."""
    store_path = tmp_path / "dist.sqlite"
    sweep = _static_sweep(store_path)

    # Phase 1: a lone worker completes exactly one point, then "dies"
    # (max_points simulates the kill between points).
    scheduler = SweepScheduler(sweep)
    scheduler.enqueue()
    report = Worker(
        store_path=str(store_path),
        sweep_id=scheduler.sweep_id,
        max_points=1,
    ).run()
    assert report.points_completed == 1

    store = SQLiteStore(store_path)
    rows = {p["fingerprint"]: p for p in store.points(scheduler.sweep_id)}
    done_fp = [fp for fp, p in rows.items() if p["status"] == "done"]
    assert len(done_fp) == 1
    done_spec = next(
        s for s in sweep.expand() if s.fingerprint() == done_fp[0]
    )
    record_written_at = store.entry_updated_at(
        EXPERIMENT_NAMESPACE, _record_key(done_spec)
    )
    completed_at = rows[done_fp[0]]["completed_at"]
    assert record_written_at is not None

    # Phase 2: resume with two fresh workers; only the two remaining
    # points may cost fresh attack evaluations.
    resumed = run_sweep(sweep, distributed=2)
    assert len(resumed.results) == 3
    assert resumed.fresh_evaluations == 2, (
        "resume recomputed an already-completed point"
    )
    assert resumed.distributed["completed_this_run"] == 2

    rows_after = {
        p["fingerprint"]: p for p in store.points(scheduler.sweep_id)
    }
    assert rows_after[done_fp[0]]["completed_at"] == completed_at, (
        "resume touched the finished point's queue row"
    )
    assert (
        store.entry_updated_at(EXPERIMENT_NAMESPACE, _record_key(done_spec))
        == record_written_at
    ), "resume rewrote the finished point's experiment record"
    store.close()


def test_worker_killed_mid_point_lease_expires_and_point_reruns(tmp_path):
    """A lease abandoned mid-evaluation is requeued after its ttl."""
    store_path = tmp_path / "dist.sqlite"
    sweep = _static_sweep(store_path, n_points=2)
    scheduler = SweepScheduler(sweep)
    scheduler.enqueue()

    # Simulate a worker that claimed a point and was then kill -9'd.
    store = SQLiteStore(store_path)
    queue = ensure_queue(store)
    dead = queue.claim(scheduler.sweep_id, "dead-worker", ttl=0.05)
    assert dead is not None
    store.close()

    result = run_sweep(sweep, distributed=1)
    assert len(result.results) == 2
    assert result.fresh_evaluations == 2, "abandoned point must still run"
    store = SQLiteStore(store_path)
    rows = {p["fingerprint"]: p for p in store.points(scheduler.sweep_id)}
    assert rows[dead.fingerprint]["status"] == "done"
    assert rows[dead.fingerprint]["attempts"] >= 2
    store.close()


# --------------------------------------------------------- failure path
def test_poisoned_point_fails_after_max_attempts_and_scheduler_reports(
    tmp_path,
):
    store_path = tmp_path / "dist.sqlite"
    sweep = _static_sweep(store_path, n_points=2)
    scheduler = SweepScheduler(sweep, max_attempts=2)
    scheduler.enqueue()
    # Poison pill: a payload whose circuit does not exist.
    store = SQLiteStore(store_path)
    bad_payload = sweep.base.with_updates(circuit="no_such_circuit").to_dict()
    ensure_queue(store).enqueue_points(
        scheduler.sweep_id, {"poison": bad_payload}
    )
    store.close()

    with pytest.raises(StoreError, match="failed point"):
        scheduler.run(workers=1)

    store = SQLiteStore(store_path)
    rows = {p["fingerprint"]: p for p in store.points(scheduler.sweep_id)}
    assert rows["poison"]["status"] == "failed"
    assert "no_such_circuit" in rows["poison"]["error"]
    assert rows["poison"]["attempts"] == 2
    # The healthy points still completed despite the poison pill.
    healthy = [p for fp, p in rows.items() if fp != "poison"]
    assert all(p["status"] == "done" for p in healthy)
    store.close()


def test_distributed_sweep_rejects_json_store(tmp_path):
    with pytest.raises(StoreError, match="work queue"):
        run_sweep(_static_sweep(tmp_path / "cache.json"), distributed=2)


def test_distributed_sweep_requires_cache_path(tmp_path):
    sweep = SweepSpec(
        base=ExperimentSpec(circuit="rand_150_5", key_length=4, seed=1),
        axes={"key_length": [4, 6]},
    )
    with pytest.raises(StoreError, match="cache_path"):
        run_sweep(sweep, distributed=2)


# ------------------------------------------------------------------ CLI
def test_cli_distributed_sweep_and_store_status(tmp_path, capsys):
    from repro.cli import main

    sweep_path = tmp_path / "sweep.json"
    store_path = tmp_path / "store.sqlite"
    sweep_path.write_text(_static_sweep(store_path, n_points=2).to_json())

    assert main(["sweep", str(sweep_path), "--workers-distributed", "2"]) == 0
    out = capsys.readouterr().out
    assert "2 points" in out and "distributed: 2 workers" in out

    # Warm resume: the CI-greppable zero-fresh line.
    assert (
        main(["sweep", str(sweep_path), "--workers-distributed", "2",
              "--resume"])
        == 0
    )
    assert "0 fresh attack evaluations" in capsys.readouterr().out

    assert main(["store", "status", str(store_path)]) == 0
    out = capsys.readouterr().out
    assert "experiment" in out and "done=2" in out

    assert main(["store", "status", str(store_path), "--json"]) == 0
    status = json.loads(capsys.readouterr().out)
    assert status["backend"] == "sqlite" and status["entries"] == 2


def test_cli_worker_joins_via_spec(tmp_path, capsys):
    from repro.cli import main

    sweep_path = tmp_path / "sweep.json"
    store_path = tmp_path / "store.sqlite"
    sweep_path.write_text(_static_sweep(store_path, n_points=2).to_json())

    assert main(["worker", "--spec", str(sweep_path)]) == 0
    out = capsys.readouterr().out
    assert "2 points" in out and "0 failed" in out

    # A second worker finds the queue drained.
    assert main(["worker", "--spec", str(sweep_path)]) == 0
    assert "0 points" in capsys.readouterr().out


def test_cli_worker_needs_target(capsys):
    from repro.cli import main

    assert main(["worker"]) == 2
    assert "needs either" in capsys.readouterr().err


def test_cli_store_status_refuses_to_fabricate_a_store(tmp_path, capsys):
    from repro.cli import main

    missing = tmp_path / "typo.sqlite"
    assert main(["store", "status", str(missing)]) == 2
    assert "no store at" in capsys.readouterr().err
    assert not missing.exists(), "read-only inspection must not create files"


def test_worker_uses_its_own_store_path_not_the_enqueuers(
    tmp_path, monkeypatch
):
    """A worker joining from elsewhere rewrites spec cache paths to its
    own view of the store, so fitness/record state stays shared instead
    of silently landing in a stray file named after the enqueuer's cwd."""
    monkeypatch.chdir(tmp_path)  # any stray relative-path file lands here
    store_path = tmp_path / "shared.sqlite"
    # Enqueue with a *relative* cache_path, the way a CI job would.
    sweep = _static_sweep("enqueuer-relative.sqlite", n_points=2)
    specs = sweep.expand()
    store = SQLiteStore(store_path)
    ensure_queue(store).enqueue_points(
        sweep.fingerprint(),
        {s.fingerprint(): s.to_dict() for s in specs},
    )
    store.close()

    report = Worker(
        store_path=str(store_path), sweep_id=sweep.fingerprint()
    ).run()
    assert report.points_completed == 2
    assert not (tmp_path / "enqueuer-relative.sqlite").exists()

    # The records landed in the worker's store, under the same memo keys.
    store = SQLiteStore(store_path)
    for spec in specs:
        assert (
            store.get(EXPERIMENT_NAMESPACE, _record_key(spec)) is not None
        ), "record must live in the shared store the worker was given"
    store.close()
