"""ExperimentSpec / SweepSpec: serialisation, validation, expansion."""

import dataclasses
import json

import pytest

from repro.api import ExperimentSpec, SweepSpec
from repro.errors import RegistryError, SpecError


def full_spec() -> ExperimentSpec:
    return ExperimentSpec(
        circuit="c1355_syn",
        key_length=16,
        scheme="dmux",
        scheme_params={"strategy": "two_key"},
        attack="muxlink",
        attack_params={"predictor": "mlp", "ensemble": 2},
        engine="ga",
        engine_params={"population_size": 6, "generations": 3},
        metrics=("overhead", "corruption"),
        metric_params={"corruption": {"n_wrong_keys": 4}},
        seed=11,
        attack_seed=7,
        workers=2,
        cache_path="/tmp/cache.json",
        tag="full",
    )


# ------------------------------------------------------- JSON round trip
def test_spec_json_roundtrip_lossless():
    spec = full_spec()
    again = ExperimentSpec.from_json(spec.to_json())
    assert again == spec
    assert again.to_dict() == spec.to_dict()
    assert again.fingerprint() == spec.fingerprint()


def test_spec_roundtrip_normalises_collections():
    # Lists from JSON land as the same spec as tuples from Python.
    a = ExperimentSpec(circuit="c17", metrics=("overhead",))
    b = ExperimentSpec.from_dict({"circuit": "c17", "metrics": ["overhead"]})
    assert a == b and a.fingerprint() == b.fingerprint()


def test_sweep_json_roundtrip_lossless(tmp_path):
    sweep = SweepSpec(
        base=full_spec(),
        axes={"circuit": ["c17", "c432_syn"], "key_length": [4, 8]},
        name="grid",
        workers=3,
        cache_path=str(tmp_path / "c.json"),
    )
    again = SweepSpec.from_json(sweep.to_json())
    assert again == sweep
    assert [s.to_dict() for s in again.expand()] == [
        s.to_dict() for s in sweep.expand()
    ]


def test_spec_from_file(tmp_path):
    path = tmp_path / "spec.json"
    path.write_text(full_spec().to_json())
    assert ExperimentSpec.from_file(path) == full_spec()


# ----------------------------------------------------------- validation
def test_unknown_spec_field_rejected():
    with pytest.raises(SpecError, match="unknown ExperimentSpec fields.*budget"):
        ExperimentSpec.from_dict({"circuit": "c17", "budget": 5})


def test_missing_circuit_rejected():
    with pytest.raises(SpecError, match="circuit"):
        ExperimentSpec.from_dict({"key_length": 8})


def test_unknown_registry_names_rejected_with_listing():
    with pytest.raises(RegistryError, match="unknown attack 'laser'.*muxlink"):
        ExperimentSpec(circuit="c17", attack="laser").validate()
    with pytest.raises(RegistryError, match="unknown locking scheme"):
        ExperimentSpec(circuit="c17", scheme="quantum").validate()
    with pytest.raises(RegistryError, match="unknown search engine"):
        ExperimentSpec(circuit="c17", engine="gradient_descent").validate()
    with pytest.raises(RegistryError, match="unknown metric"):
        ExperimentSpec(circuit="c17", metrics=("beauty",)).validate()


def test_unknown_circuit_rejected():
    with pytest.raises(SpecError, match="unknown circuit 'c9000'"):
        ExperimentSpec(circuit="c9000").validate()


def test_invalid_values_rejected():
    with pytest.raises(SpecError, match="key_length"):
        ExperimentSpec(circuit="c17", key_length=0).validate()
    with pytest.raises(SpecError, match="workers"):
        ExperimentSpec(circuit="c17", workers=0).validate()
    with pytest.raises(SpecError, match="metric_params"):
        ExperimentSpec(
            circuit="c17", metric_params={"overhead": {}}
        ).validate()


def test_with_updates_rejects_unknown_fields():
    spec = ExperimentSpec(circuit="c17")
    assert spec.with_updates(seed=9).seed == 9
    with pytest.raises(SpecError, match="unknown ExperimentSpec fields"):
        spec.with_updates(velocity=3)


# ----------------------------------------------------------- fingerprint
def test_fingerprint_ignores_execution_knobs():
    spec = ExperimentSpec(circuit="c17", seed=3)
    assert spec.fingerprint() == spec.with_updates(
        workers=8, cache_path="/tmp/x.json"
    ).fingerprint()
    # The tag is a label, not an input: relabelled reruns must share
    # cached experiment records.
    assert spec.fingerprint() == spec.with_updates(tag="relabelled").fingerprint()
    # Tracing is pure observation: a traced rerun must replay the
    # untraced run's cached record byte for byte.
    assert spec.fingerprint() == spec.with_updates(
        trace="spans.jsonl"
    ).fingerprint()
    assert "trace" not in spec.deterministic_dict()
    assert spec.with_updates(trace="spans.jsonl").to_dict()["trace"] == (
        "spans.jsonl"
    )  # round-trips through JSON even though fingerprints ignore it
    assert spec.fingerprint() != spec.with_updates(seed=4).fingerprint()
    assert spec.fingerprint() != spec.with_updates(
        attack_params={"predictor": "bayes"}
    ).fingerprint()


def test_async_mode_resolution_and_fingerprints():
    """The *resolved* loop mode feeds the fingerprint: it changes the
    search trajectory, but is identical at any worker count."""
    engine = ExperimentSpec(
        circuit="c17", key_length=2, engine="ga", seed=1,
    )
    # None resolves from workers — but only for engine specs.
    assert engine.resolved_async_mode() is False
    assert engine.with_updates(workers=4).resolved_async_mode() is True
    assert engine.with_updates(async_mode=False, workers=4).resolved_async_mode() is False
    static = ExperimentSpec(circuit="c17", key_length=2, seed=1)
    assert static.with_updates(workers=8).resolved_async_mode() is False
    # Static fingerprints stay worker-independent; engine fingerprints
    # track the resolved mode, whichever way it was reached.
    assert static.fingerprint() == static.with_updates(workers=8).fingerprint()
    assert engine.fingerprint() != engine.with_updates(workers=4).fingerprint()
    assert (
        engine.with_updates(workers=4).fingerprint()
        == engine.with_updates(async_mode=True).fingerprint()
    ), "explicit async and workers-derived async are the same experiment"
    assert (
        engine.with_updates(async_mode=False, workers=4).fingerprint()
        == engine.fingerprint()
    ), "pinned sync at any worker count is the serial experiment"
    with pytest.raises(SpecError, match="async_mode"):
        ExperimentSpec(circuit="c17", async_mode="yes").validate()


def test_sweep_fingerprint_tracks_resolved_point_modes():
    """Worker counts never shift a static sweep's id; for engine sweeps
    they only shift it when they flip the points' resolved loop mode
    (which changes the results). Same-mode worker counts share queues."""
    static = SweepSpec(
        base=ExperimentSpec(circuit="c17", key_length=2),
        axes={"seed": [0, 1]},
    )
    assert (
        static.fingerprint()
        == dataclasses.replace(static, workers=8).fingerprint()
    )
    engine = SweepSpec(
        base=ExperimentSpec(circuit="c17", key_length=2, engine="ga"),
        axes={"seed": [0, 1]},
    )
    serial_id = engine.fingerprint()
    four = dataclasses.replace(engine, workers=4).fingerprint()
    eight = dataclasses.replace(engine, workers=8).fingerprint()
    assert four == eight, "same resolved mode -> same queue rows"
    assert four != serial_id, "sync and steady-state are different sweeps"
    # Pinning the mode makes the id worker-count independent again.
    pinned = dataclasses.replace(engine, async_mode=True)
    assert (
        pinned.fingerprint()
        == dataclasses.replace(pinned, workers=4).fingerprint()
    )


def test_sweep_async_mode_applies_to_every_point_and_sweep_id():
    base = ExperimentSpec(circuit="c17", key_length=2, engine="ga")
    plain = SweepSpec(base=base, axes={"seed": [0, 1]})
    pinned = SweepSpec(base=base, axes={"seed": [0, 1]}, async_mode=True)
    assert all(s.async_mode is True for s in pinned.expand())
    assert all(s.resolved_async_mode() for s in pinned.expand())
    assert plain.fingerprint() != pinned.fingerprint()
    # Round-trips through JSON.
    again = SweepSpec.from_json(pinned.to_json())
    assert again.async_mode is True
    assert again.fingerprint() == pinned.fingerprint()


# -------------------------------------------------------------- sweeps
def test_sweep_expansion_grid_order_and_tags():
    sweep = SweepSpec(
        base=ExperimentSpec(circuit="c17", key_length=2),
        axes={"circuit": ["c17", "c432_syn"], "seed": [0, 1]},
    )
    specs = sweep.expand()
    assert [(s.circuit, s.seed) for s in specs] == [
        ("c17", 0), ("c17", 1), ("c432_syn", 0), ("c432_syn", 1),
    ]
    assert specs[0].tag == "circuit=c17,seed=0"


def test_sweep_plain_axis_resets_params_only_when_component_changes():
    sweep = SweepSpec(
        base=ExperimentSpec(
            circuit="rand_80_3", scheme="dmux",
            scheme_params={"strategy": "two_key"}, attack=None,
        ),
        axes={"scheme": ["rll", "dmux"]},
    )
    rll_spec, dmux_spec = sweep.expand()
    # The base's dmux-only strategy must not leak into the rll point...
    assert rll_spec.scheme_params == {}
    # ...but the point keeping the base's scheme keeps its parameters.
    assert dmux_spec.scheme_params == {"strategy": "two_key"}
    # Both points construct cleanly.
    sweep.validate()


def test_sweep_merge_axis_resets_component_params():
    sweep = SweepSpec(
        base=ExperimentSpec(
            circuit="c17", attack="muxlink",
            attack_params={"predictor": "bayes"},
        ),
        axes={"*attack": [
            {"attack": "random"},
            {"attack": "muxlink", "attack_params": {"predictor": "mlp"}},
        ]},
    )
    random_spec, mlp_spec = sweep.expand()
    assert random_spec.attack == "random"
    assert random_spec.attack_params == {}  # bayes must not leak through
    assert mlp_spec.attack_params == {"predictor": "mlp"}


def test_sweep_shared_workers_and_cache_apply_to_points(tmp_path):
    cache = str(tmp_path / "c.json")
    sweep = SweepSpec(
        base=ExperimentSpec(circuit="c17"),
        axes={"seed": [0, 1]},
        workers=4,
        cache_path=cache,
    )
    for spec in sweep.expand():
        assert spec.workers == 4
        assert spec.cache_path == cache


def test_sweep_rejects_bad_axes():
    base = ExperimentSpec(circuit="c17")
    with pytest.raises(SpecError, match="not an ExperimentSpec field"):
        SweepSpec(base=base, axes={"velocity": [1, 2]}).expand()
    with pytest.raises(SpecError, match="must map to a list"):
        SweepSpec(base=base, axes={"seed": 3})
    with pytest.raises(SpecError, match="is empty"):
        SweepSpec(base=base, axes={"seed": []})
    with pytest.raises(SpecError, match="partial-spec dicts"):
        SweepSpec(base=base, axes={"*x": [3]}).expand()
    with pytest.raises(SpecError, match="unknown fields"):
        SweepSpec(base=base, axes={"*x": [{"velocity": 1}]}).expand()


def test_sweep_validate_catches_bad_points():
    sweep = SweepSpec(
        base=ExperimentSpec(circuit="c17"),
        axes={"*a": [{"attack": "muxlink"}, {"attack": "laser"}]},
    )
    with pytest.raises(RegistryError, match="unknown attack 'laser'"):
        sweep.validate()


def test_spec_json_is_plain_data():
    payload = json.loads(full_spec().to_json())
    assert isinstance(payload, dict)
    assert payload["metrics"] == ["overhead", "corruption"]
    assert payload["scheme_params"] == {"strategy": "two_key"}
