"""Tseitin encoding: SAT models must agree with the logic simulator."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.circuits import load_circuit
from repro.errors import CnfError
from repro.netlist import GateType, Netlist
from repro.sat import CdclSolver, Cnf, encode_netlist
from repro.sim import simulate_bits


def test_encoding_var_map(c17):
    enc = encode_netlist(c17)
    assert set(enc.var_of) == set(c17.signals())
    assert enc.lit("G22") == enc.var_of["G22"]
    assert enc.lit("G22", False) == -enc.var_of["G22"]
    with pytest.raises(CnfError):
        enc.lit("ghost")


def test_forced_output_yields_valid_input(c17):
    """Solving for G23=1 must produce inputs that simulate to G23=1."""
    enc = encode_netlist(c17)
    result = CdclSolver(enc.cnf).solve([enc.lit("G23", True)])
    assert result.is_sat
    bits = {s: np.array([int(result.model[enc.var_of[s]])]) for s in c17.inputs}
    sim = simulate_bits(c17, bits)
    assert int(sim.bits("G23")[0]) == 1


def test_unsatisfiable_output_combination():
    """A gate and its negation cannot both be 1."""
    n = Netlist("n")
    n.add_input("a")
    n.add_gate("x", GateType.BUF, ["a"])
    n.add_gate("y", GateType.NOT, ["a"])
    n.add_output("x")
    n.add_output("y")
    enc = encode_netlist(n)
    result = CdclSolver(enc.cnf).solve([enc.lit("x"), enc.lit("y")])
    assert result.is_unsat


def test_bindings_share_variables(c17):
    cnf = Cnf()
    pi = {s: cnf.new_var(s) for s in c17.inputs}
    enc_a = encode_netlist(c17, cnf, bindings=pi, name_prefix="A_")
    enc_b = encode_netlist(c17, cnf, bindings=pi, name_prefix="B_")
    # Identical circuits on shared inputs: outputs can never differ.
    out = c17.outputs[0]
    d = cnf.new_var()
    a, b = enc_a.var_of[out], enc_b.var_of[out]
    cnf.add_clauses([[-d, a, b], [-d, -a, -b], [d, -a, b], [d, a, -b]])
    assert CdclSolver(cnf).solve([d]).is_unsat


def test_bindings_validation(c17):
    cnf = Cnf()
    with pytest.raises(CnfError, match="unknown signal"):
        encode_netlist(c17, cnf, bindings={"ghost": 1})
    with pytest.raises(CnfError, match="not an allocated"):
        encode_netlist(c17, cnf, bindings={"G1": 99})


def test_const_and_mux_encoding():
    n = Netlist("m")
    n.add_input("s")
    n.add_input("a")
    n.add_input("b")
    n.add_gate("one", GateType.CONST1, [])
    n.add_gate("zero", GateType.CONST0, [])
    n.add_gate("z", GateType.MUX, ["s", "a", "b"])
    n.add_output("z")
    enc = encode_netlist(n)
    for s, a, b in [(0, 1, 0), (1, 0, 1), (1, 1, 0), (0, 0, 1)]:
        expected = a if s == 0 else b
        result = CdclSolver(enc.cnf).solve(
            [enc.lit("s", bool(s)), enc.lit("a", bool(a)), enc.lit("b", bool(b))]
        )
        assert result.is_sat
        assert result.model[enc.var_of["z"]] == bool(expected)
        assert result.model[enc.var_of["one"]] is True
        assert result.model[enc.var_of["zero"]] is False


@settings(max_examples=25, deadline=None)
@given(
    st.integers(min_value=15, max_value=60),
    st.integers(min_value=0, max_value=10**6),
)
def test_models_match_simulation_on_random_circuits(n_gates, seed):
    """For random circuits and inputs, SAT models equal simulation values."""
    circuit = load_circuit(f"rand_{n_gates}_{seed}")
    enc = encode_netlist(circuit)
    rng = np.random.default_rng(seed)
    bits = {s: np.array([int(rng.integers(0, 2))]) for s in circuit.inputs}
    sim = simulate_bits(circuit, bits)
    assumptions = [enc.lit(s, bool(bits[s][0])) for s in circuit.inputs]
    result = CdclSolver(enc.cnf).solve(assumptions)
    assert result.is_sat, "fully constrained circuit must be satisfiable"
    for gate_name in circuit.gates:
        assert result.model[enc.var_of[gate_name]] == bool(sim.bits(gate_name)[0])
