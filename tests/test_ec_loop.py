"""The unified search loop: sync golden equivalence + async determinism.

Two contracts pin the ``repro.ec.loop`` refactor:

* **sync** (``async_mode=False``) reproduces the legacy hand-rolled
  engine loops byte-identically — asserted against the same golden
  trajectories ``test_ec_determinism.py`` pins, plus an AutoLock
  pipeline golden captured on the pre-refactor implementation;
* **async** (steady-state) is a deterministic function of the seed:
  completions integrate in submission order, so any worker count — and
  a serial replay — produces the identical champion set.

Plus the crash-safety satellite: a raised attack error flushes dirty
fitness-cache entries (and salvages completed pool siblings) before
propagating.
"""

from __future__ import annotations

import hashlib

import pytest

from repro.circuits import load_circuit
from repro.ec import (
    AsyncEvaluator,
    AutoLock,
    AutoLockConfig,
    BacklogTuner,
    FitnessCache,
    GaConfig,
    GeneticAlgorithm,
    Nsga2,
    Nsga2Config,
    ProcessPoolEvaluator,
    SerialEvaluator,
)
from repro.ec.genotype import genotype_key, random_genotype
from repro.errors import EvolutionError

from test_ec_determinism import (
    GA_RAND100_BESTS,
    GA_RAND100_MEANS,
    GA_RAND100_SHA,
    NSGA2_FRONT,
    ones_fitness,
    two_objectives,
)


def _champion_sha(genes) -> str:
    return hashlib.sha256(repr(genotype_key(genes)).encode()).hexdigest()


#: AutoLock golden, captured on the pre-refactor (hand-rolled loop)
#: implementation: rand_150_5, K=8, pop=4, gens=3, bayes fitness+report,
#: report_ensemble=1, seed=11.
AUTOLOCK_BASELINE = 0.625
AUTOLOCK_EVOLVED = 0.4375
AUTOLOCK_BESTS = [0.5, 0.4375, 0.4375]
AUTOLOCK_SHA = "19abb98c8208ac35070f98a1cfcf06699f059d323ce772e2d31b739aed9d2fa9"


def _autolock_config(**overrides) -> AutoLockConfig:
    base = dict(
        key_length=8,
        population_size=4,
        generations=3,
        fitness_predictor="bayes",
        report_predictor="bayes",
        report_ensemble=1,
        seed=11,
    )
    base.update(overrides)
    return AutoLockConfig(**base)


# ------------------------------------------------ sync golden equivalence
def test_sync_ga_reproduces_legacy_golden_through_async_evaluator():
    """The loop's sync path over an AsyncEvaluator's batch API must still
    walk the exact legacy trajectory (the serial/pool variants are pinned
    in test_ec_determinism.py)."""
    circuit = load_circuit("rand_100_7")
    config = GaConfig(
        key_length=10, population_size=8, generations=8,
        mutation="key_only", seed=42, async_mode=False,
    )
    with AsyncEvaluator(workers=2) as evaluator:
        result = GeneticAlgorithm(config).run(
            circuit, ones_fitness, evaluator=evaluator
        )
    assert [s.best for s in result.history] == GA_RAND100_BESTS
    assert [s.mean for s in result.history] == GA_RAND100_MEANS
    assert _champion_sha(result.best_genotype) == GA_RAND100_SHA


def test_sync_nsga2_reproduces_legacy_golden():
    circuit = load_circuit("rand_100_7")
    config = Nsga2Config(
        key_length=6, population_size=8, generations=5, seed=5,
        async_mode=False,
    )
    result = Nsga2(config).run(circuit, two_objectives)
    assert sorted(result.front_objectives) == NSGA2_FRONT


def test_sync_autolock_reproduces_prerefactor_golden():
    """The full pipeline (GA + report stage) over the loop, vs the values
    captured on the pre-refactor implementation."""
    circuit = load_circuit("rand_150_5")
    result = AutoLock(_autolock_config()).run(circuit)
    assert result.baseline_accuracy == AUTOLOCK_BASELINE
    assert result.evolved_accuracy == AUTOLOCK_EVOLVED
    assert [s.best for s in result.ga.history] == AUTOLOCK_BESTS
    assert _champion_sha(result.ga.best_genotype) == AUTOLOCK_SHA


# --------------------------------------------------- async determinism
def test_async_ga_deterministic_across_worker_counts():
    """Steady state integrates completions in submission order, so the
    trajectory — not just the champion — is identical at any parallelism,
    including a 1-worker serial replay."""
    circuit = load_circuit("rand_100_7")
    config = GaConfig(
        key_length=10, population_size=8, generations=6,
        mutation="key_only", seed=42, async_mode=True,
    )

    def run(workers: int):
        with AsyncEvaluator(workers=workers) as evaluator:
            return GeneticAlgorithm(config).run(
                circuit, ones_fitness, evaluator=evaluator
            )

    replay = run(1)
    parallel = run(3)
    assert parallel.hall_of_fame == replay.hall_of_fame
    assert parallel.best_genotype == replay.best_genotype
    assert parallel.best_fitness == replay.best_fitness
    assert [
        (s.best, s.mean, s.std) for s in parallel.history
    ] == [(s.best, s.mean, s.std) for s in replay.history]
    assert parallel.evaluations == replay.evaluations == 6 * 8


def test_async_nsga2_deterministic_across_worker_counts():
    circuit = load_circuit("rand_100_7")
    config = Nsga2Config(
        key_length=6, population_size=8, generations=4, seed=5,
        async_mode=True,
    )

    def run(workers: int):
        with AsyncEvaluator(workers=workers) as evaluator:
            return Nsga2(config).run(circuit, two_objectives, evaluator=evaluator)

    replay = run(1)
    parallel = run(3)
    assert parallel.front_objectives == replay.front_objectives
    assert parallel.front_genotypes == replay.front_genotypes
    assert len(parallel.history) == config.generations


def test_async_autolock_serial_replay_matches_parallel():
    """AutoLockConfig(workers=2) defaults to steady state; a 1-worker
    async replay of the same seed must land on the same champion set."""
    circuit = load_circuit("rand_150_5")
    parallel = AutoLock(_autolock_config(workers=2)).run(circuit)
    replay = AutoLock(
        _autolock_config(workers=1, async_mode=True)
    ).run(circuit)
    assert parallel.ga.best_genotype == replay.ga.best_genotype
    assert parallel.ga.hall_of_fame == replay.ga.hall_of_fame
    assert parallel.evolved_accuracy == replay.evolved_accuracy
    assert parallel.baseline_accuracy == replay.baseline_accuracy


def test_async_window_stats_are_per_run_on_a_shared_evaluator():
    """Sweeps share one AsyncEvaluator across points: each run's windowed
    history must account only its own dispatches, not the pool's
    lifetime totals."""
    circuit = load_circuit("rand_100_7")
    budget = 3 * 6

    def config(seed):
        return GaConfig(
            key_length=8, population_size=6, generations=3,
            mutation="key_only", seed=seed, async_mode=True,
        )

    with AsyncEvaluator(workers=2) as evaluator:
        first = GeneticAlgorithm(config(1)).run(
            circuit, ones_fitness, evaluator=evaluator
        )
        second = GeneticAlgorithm(config(2)).run(
            circuit, ones_fitness, evaluator=evaluator
        )
    for result in (first, second):
        misses = [s.cache_misses for s in result.history]
        assert all(m >= 0 for m in misses)
        assert sum(misses) <= budget, (
            "window stats leaked another run's evaluator totals"
        )


def test_async_early_stop_cancels_remaining_budget():
    """Hitting target_fitness mid-stream stops the loop early and cancels
    what it can instead of burning the full budget."""
    circuit = load_circuit("rand_100_7")
    config = GaConfig(
        key_length=6, population_size=8, generations=50,
        mutation="key_only", target_fitness=0.0, seed=3, async_mode=True,
    )
    with AsyncEvaluator(workers=2) as evaluator:
        result = GeneticAlgorithm(config).run(
            circuit, ones_fitness, evaluator=evaluator
        )
    assert result.best_fitness == 0.0
    assert result.stopped_early
    assert result.evaluations < 50 * 8


def test_async_mode_requires_future_capable_evaluator():
    circuit = load_circuit("rand_100_7")
    config = GaConfig(
        key_length=4, population_size=4, generations=2, async_mode=True,
    )
    with pytest.raises(EvolutionError, match="future-capable"):
        GeneticAlgorithm(config).run(
            circuit, ones_fitness, evaluator=SerialEvaluator()
        )


def test_async_config_validation():
    with pytest.raises(EvolutionError, match="async_backlog"):
        GaConfig(async_backlog=0)
    with pytest.raises(EvolutionError, match="async_backlog"):
        Nsga2Config(async_backlog=0)
    with pytest.raises(EvolutionError, match="int or 'auto'"):
        GaConfig(async_backlog="adaptive")
    with pytest.raises(EvolutionError, match="int or 'auto'"):
        Nsga2Config(async_backlog="adaptive")
    # "auto" is the one accepted string.
    assert GaConfig(async_backlog="auto").async_backlog == "auto"
    assert Nsga2Config(async_backlog="auto").async_backlog == "auto"


# ------------------------------------------- adaptive backlog tuning
def test_backlog_tuner_bounds_and_ewma():
    tuner = BacklogTuner(4)
    # No observations yet: conservative floor (workers + 1).
    assert tuner.target() == 5
    for _ in range(10):
        tuner.observe(1.0)
    # Uniform latency: peak/mean ~ 1, stays at the floor.
    assert tuner.target() == 5
    skewed = BacklogTuner(4)
    for _ in range(20):
        skewed.observe(0.1)
    skewed.observe(2.0)
    # One straggler: deepen the backlog, but never past 8x workers.
    assert 5 < skewed.target() <= 32
    spiky = BacklogTuner(2)
    spiky.observe(1e-6)
    spiky.observe(1e6)
    assert spiky.target() <= 16
    # Negative latencies (clock weirdness) must not corrupt the EWMA.
    tuner.observe(-1.0)
    assert tuner.target() >= 5


def test_async_ga_runs_with_auto_backlog():
    circuit = load_circuit("rand_100_7")
    results = []
    for backlog in ("auto", None):
        config = GaConfig(
            key_length=4, population_size=4, generations=3,
            async_mode=True, async_backlog=backlog, seed=7,
        )
        evaluator = AsyncEvaluator(2)
        try:
            results.append(
                GeneticAlgorithm(config).run(
                    circuit, ones_fitness, evaluator=evaluator
                )
            )
        finally:
            evaluator.close()
    auto, fixed = results
    assert auto.evaluations == fixed.evaluations
    assert auto.best_fitness <= 1.0


# ------------------------------------------- crash-safe cache flushing
class ExplodingFitness:
    """Cache-fronted fitness that batches its writes and then crashes.

    Mimics an engine fitness whose persistence relies on a later flush
    (``put(flush=False)``): without the loop's flush-on-exception, every
    evaluation paid for before the crash would be lost.
    """

    def __init__(self, cache: FitnessCache, explode_after: int) -> None:
        self.cache = cache
        self.explode_after = explode_after
        self.evaluations = 0

    def __call__(self, genes) -> float:
        key = genotype_key(genes)
        cached = self.cache.get(key)
        if cached is not None:
            return float(cached)
        if self.evaluations >= self.explode_after:
            raise RuntimeError("attack backend crashed")
        self.evaluations += 1
        value = ones_fitness(genes)
        self.cache.put(key, value, flush=False)
        return value


def test_engine_crash_flushes_dirty_cache_entries(tmp_path):
    circuit = load_circuit("rand_100_7")
    path = tmp_path / "cache.json"
    fitness = ExplodingFitness(
        FitnessCache(path=path, namespace="ns"), explode_after=5
    )
    config = GaConfig(
        key_length=6, population_size=8, generations=4, seed=2,
    )
    with pytest.raises(RuntimeError, match="attack backend crashed"):
        GeneticAlgorithm(config).run(circuit, fitness)
    reloaded = FitnessCache(path=path, namespace="ns")
    assert len(reloaded.store) == 5, (
        "the evaluations paid for before the crash must be on disk"
    )


class PoisonFitness:
    """Picklable fitness that crashes on one specific genotype."""

    def __init__(self, poison: tuple, cache: FitnessCache) -> None:
        self.poison = poison
        self.cache = cache
        self.evaluations = 0

    def __call__(self, genes) -> float:
        if genotype_key(genes) == self.poison:
            raise RuntimeError("poisoned genotype")
        return ones_fitness(genes)


def test_pool_crash_salvages_completed_sibling_evaluations(tmp_path):
    """One failing task in a pool batch must not discard its siblings'
    finished values: they are merged into the cache and flushed before
    the error propagates."""
    circuit = load_circuit("rand_100_7")
    genomes = [random_genotype(circuit, 4, seed_or_rng=s) for s in range(4)]
    poison = genotype_key(genomes[1])
    path = tmp_path / "cache.json"
    fitness = PoisonFitness(
        poison, FitnessCache(path=path, namespace="ns")
    )
    with ProcessPoolEvaluator(workers=2) as evaluator:
        with pytest.raises(RuntimeError, match="poisoned genotype"):
            evaluator.evaluate(genomes, fitness)
    reloaded = FitnessCache(path=path, namespace="ns")
    salvaged = [g for g in genomes if genotype_key(g) != poison]
    assert all(
        reloaded.get(genotype_key(g)) is not None for g in salvaged
    ), "completed sibling evaluations must survive the batch failure"
    assert reloaded.get(poison) is None
