"""Genotype handling and evolutionary operators."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ec.genotype import (
    genotype_is_valid,
    genotype_key,
    random_genotype,
    repair_genotype,
)
from repro.ec.operators import (
    CROSSOVERS,
    MUTATIONS,
    SELECTIONS,
    MutationConfig,
    crossover_one_point,
    crossover_two_point,
    crossover_uniform,
    mutate,
    select_rank,
    select_roulette,
    select_tournament,
)
from repro.errors import EvolutionError
from repro.locking import lock_with_genes
from repro.locking.dmux import MuxGene
from repro.sim import check_equivalence


# ----------------------------------------------------------------- genotype
def test_random_genotype_valid(rand100):
    genes = random_genotype(rand100, 8, seed_or_rng=1)
    assert len(genes) == 8
    assert genotype_is_valid(rand100, genes)
    # Distinct wires across genes.
    wires = [w for g in genes for w in g.wires]
    assert len(wires) == len(set(wires))


def test_random_genotype_deterministic(rand100):
    a = random_genotype(rand100, 6, seed_or_rng=3)
    b = random_genotype(rand100, 6, seed_or_rng=3)
    assert genotype_key(a) == genotype_key(b)


def test_random_genotype_guards(rand100, tiny):
    with pytest.raises(EvolutionError):
        random_genotype(rand100, 0, seed_or_rng=1)
    with pytest.raises(EvolutionError):
        random_genotype(tiny, 50, seed_or_rng=1)


def test_repair_fixes_duplicates(rand100):
    genes = random_genotype(rand100, 6, seed_or_rng=2)
    broken = genes[:5] + [genes[0]]  # duplicate wire usage
    assert not genotype_is_valid(rand100, broken)
    repaired = repair_genotype(rand100, broken, seed_or_rng=3)
    assert len(repaired) == 6
    assert genotype_is_valid(rand100, repaired)
    # Valid prefix preserved verbatim.
    assert genotype_key(repaired[:5]) == genotype_key(genes[:5])


def test_repair_fixes_stale_genes(rand100):
    genes = random_genotype(rand100, 4, seed_or_rng=4)
    broken = genes[:3] + [MuxGene("ghost1", "ghost2", "ghost3", "ghost4", 0)]
    repaired = repair_genotype(rand100, broken, seed_or_rng=5)
    assert genotype_is_valid(rand100, repaired)


def test_repaired_genotype_builds_equivalent_circuit(rand100):
    genes = random_genotype(rand100, 6, seed_or_rng=6)
    locked = lock_with_genes(rand100, genes)
    res = check_equivalence(
        rand100, locked.netlist, key_right=dict(locked.key), seed_or_rng=1
    )
    assert res.equal


# ---------------------------------------------------------------- selection
@pytest.mark.parametrize("select", [select_tournament, select_roulette, select_rank],
                         ids=["tournament", "roulette", "rank"])
def test_selection_prefers_fitter(select):
    fits = [0.9, 0.1, 0.8, 0.7]  # index 1 is best (minimisation)
    rng = np.random.default_rng(0)
    picks = [select(fits, rng) for _ in range(2000)]
    counts = np.bincount(picks, minlength=4)
    assert counts[1] == max(counts), f"best individual under-selected: {counts}"
    assert counts[1] > counts[0], "best must beat worst decisively"
    assert all(0 <= p < 4 for p in picks)


@pytest.mark.parametrize("select", [select_tournament, select_roulette, select_rank])
def test_selection_empty_population(select):
    with pytest.raises(EvolutionError):
        select([], 0)


# ---------------------------------------------------------------- crossover
@pytest.mark.parametrize("cross", [crossover_one_point, crossover_two_point,
                                   crossover_uniform],
                         ids=["one_point", "two_point", "uniform"])
def test_crossover_preserves_genes(cross, rand100):
    a = random_genotype(rand100, 8, seed_or_rng=1)
    b = random_genotype(rand100, 8, seed_or_rng=2)
    ca, cb = cross(a, b, 3)
    assert len(ca) == len(cb) == 8
    pool = {genotype_key([g]) for g in a + b}
    for child in (ca, cb):
        for gene in child:
            assert genotype_key([gene]) in pool, "crossover invented a gene"
    # Multiset union preserved: every parental gene ends up in some child.
    combined = sorted(genotype_key(ca) + genotype_key(cb))
    assert combined == sorted(genotype_key(a) + genotype_key(b))


def test_crossover_length_mismatch(rand100):
    a = random_genotype(rand100, 4, seed_or_rng=1)
    b = random_genotype(rand100, 5, seed_or_rng=2)
    with pytest.raises(EvolutionError):
        crossover_one_point(a, b, 0)


def test_crossover_single_gene(rand100):
    a = random_genotype(rand100, 1, seed_or_rng=1)
    b = random_genotype(rand100, 1, seed_or_rng=2)
    ca, cb = crossover_one_point(a, b, 0)
    assert (ca, cb) == (a, b)


# ----------------------------------------------------------------- mutation
def test_mutation_config_validation():
    with pytest.raises(EvolutionError):
        MutationConfig(flip_key=1.5)


def test_flip_key_only_changes_bits(rand100):
    genes = random_genotype(rand100, 10, seed_or_rng=7)
    config = MutationConfig(flip_key=1.0, relocate=0.0, reroute_partner=0.0)
    mutated = mutate(rand100, genes, config, seed_or_rng=8)
    assert len(mutated) == 10
    for old, new in zip(genes, mutated):
        assert (old.f_i, old.g_i, old.f_j, old.g_j) == (
            new.f_i, new.g_i, new.f_j, new.g_j)
        assert new.k == old.k ^ 1


def test_relocate_produces_valid_genotype(rand100):
    genes = random_genotype(rand100, 8, seed_or_rng=9)
    config = MutationConfig(flip_key=0.0, relocate=1.0, reroute_partner=0.0)
    mutated = mutate(rand100, genes, config, seed_or_rng=10)
    repaired = repair_genotype(rand100, mutated, seed_or_rng=11)
    assert genotype_is_valid(rand100, repaired)
    changed = sum(
        genotype_key([o]) != genotype_key([n]) for o, n in zip(genes, mutated)
    )
    assert changed >= 6, "relocate=1.0 should move nearly every gene"


def test_reroute_keeps_first_wire(rand100):
    genes = random_genotype(rand100, 8, seed_or_rng=12)
    config = MutationConfig(flip_key=0.0, relocate=0.0, reroute_partner=1.0)
    mutated = mutate(rand100, genes, config, seed_or_rng=13)
    for old, new in zip(genes, mutated):
        assert (old.f_i, old.g_i) == (new.f_i, new.g_i), "true wire must persist"


def test_zero_probability_mutation_is_identity(rand100):
    genes = random_genotype(rand100, 8, seed_or_rng=14)
    config = MutationConfig(flip_key=0.0, relocate=0.0, reroute_partner=0.0)
    assert genotype_key(mutate(rand100, genes, config, 15)) == genotype_key(genes)


def test_registries_complete():
    assert set(SELECTIONS) == {"tournament", "roulette", "rank"}
    assert set(CROSSOVERS) == {"one_point", "two_point", "uniform"}
    assert "default" in MUTATIONS and "reroute_heavy" in MUTATIONS


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=0, max_value=10**6))
def test_mutate_then_repair_always_valid(seed):
    """Any mutation followed by repair yields an applicable genotype."""
    from repro.circuits import load_circuit

    circuit = load_circuit("rand_80_17")
    rng = np.random.default_rng(seed)
    genes = random_genotype(circuit, 6, rng)
    mutated = mutate(circuit, genes, MutationConfig(0.3, 0.3, 0.3), rng)
    repaired = repair_genotype(circuit, mutated, rng)
    assert genotype_is_valid(circuit, repaired)
    assert len(repaired) == 6
