"""Seed-fixed golden trajectories for the evolutionary engines.

The evaluator refactor (and any future one) must not silently change
search behaviour: with a fixed seed, the GA and NSGA-II are deterministic
functions of (circuit, config, fitness). These tests pin exact
best-fitness trajectories and champion genotypes on registry-parametric
``rand_*`` circuits with a cheap synthetic fitness, so any accidental
change to RNG consumption, operator order, population bookkeeping, or
evaluation order shows up as a hard diff — not as a quietly different
experiment.

If a change *intentionally* alters search behaviour, regenerate the
goldens and say so in the commit message.
"""

from __future__ import annotations

import hashlib

from repro.circuits import load_circuit
from repro.ec import (
    GaConfig,
    GeneticAlgorithm,
    Nsga2,
    Nsga2Config,
    ProcessPoolEvaluator,
)
from repro.ec.genotype import genotype_key


def ones_fitness(genes) -> float:
    return sum(g.k for g in genes) / len(genes)


def two_objectives(genes) -> tuple[float, float]:
    ones = sum(g.k for g in genes) / len(genes)
    return (ones, 1.0 - ones)


def _champion_sha(genes) -> str:
    return hashlib.sha256(repr(genotype_key(genes)).encode()).hexdigest()


GA_RAND100_BESTS = [0.3, 0.2, 0.2, 0.2, 0.1, 0.1, 0.1, 0.1]
GA_RAND100_MEANS = [
    0.45,
    0.425,
    0.3125,
    0.275,
    0.2625,
    0.2875,
    0.28750000000000003,
    0.22500000000000003,
]
GA_RAND100_SHA = "e247de6823bcf1d677afcb66d136a59529ed4b61bb178cdcabf1a679b3b94a64"

GA_RAND200_BESTS = [0.5, 0.5, 0.375, 0.25, 0.25, 0.25]
GA_RAND200_SHA = "93cd991aa0f8b7b02bb60ffc77adcdf255ff8b23ff67e599adc752bc9d7a5a8d"

NSGA2_FRONT = [
    (0.0, 1.0),
    (0.0, 1.0),
    (0.3333333333333333, 0.6666666666666667),
    (0.3333333333333333, 0.6666666666666667),
    (0.5, 0.5),
    (0.5, 0.5),
    (0.6666666666666666, 0.33333333333333337),
    (0.6666666666666666, 0.33333333333333337),
]


def test_ga_trajectory_golden_rand100():
    circuit = load_circuit("rand_100_7")
    config = GaConfig(
        key_length=10,
        population_size=8,
        generations=8,
        mutation="key_only",
        seed=42,
    )
    result = GeneticAlgorithm(config).run(circuit, ones_fitness)
    assert [s.best for s in result.history] == GA_RAND100_BESTS
    assert [s.mean for s in result.history] == GA_RAND100_MEANS
    assert _champion_sha(result.best_genotype) == GA_RAND100_SHA
    assert result.best_fitness == GA_RAND100_BESTS[-1]


def test_ga_trajectory_golden_rand200_default_operators():
    circuit = load_circuit("rand_200_11")
    config = GaConfig(
        key_length=8,
        population_size=6,
        generations=6,
        mutation="default",
        crossover="uniform",
        seed=7,
    )
    result = GeneticAlgorithm(config).run(circuit, ones_fitness)
    assert [s.best for s in result.history] == GA_RAND200_BESTS
    assert _champion_sha(result.best_genotype) == GA_RAND200_SHA


def test_ga_trajectory_golden_survives_process_pool():
    """The pool backend must reproduce the pinned serial trajectory.

    ``ones_fitness`` is a plain module-level function (picklable, no
    cache), so this also covers the evaluator's cache-less dispatch path
    against the golden.
    """
    circuit = load_circuit("rand_100_7")
    config = GaConfig(
        key_length=10,
        population_size=8,
        generations=8,
        mutation="key_only",
        seed=42,
    )
    with ProcessPoolEvaluator(workers=2) as evaluator:
        result = GeneticAlgorithm(config).run(
            circuit, ones_fitness, evaluator=evaluator
        )
    assert [s.best for s in result.history] == GA_RAND100_BESTS
    assert _champion_sha(result.best_genotype) == GA_RAND100_SHA


def test_nsga2_front_golden_rand100():
    circuit = load_circuit("rand_100_7")
    config = Nsga2Config(key_length=6, population_size=8, generations=5, seed=5)
    result = Nsga2(config).run(circuit, two_objectives)
    assert sorted(result.front_objectives) == NSGA2_FRONT
    assert all(
        h["best_per_objective"] == [0.0, 0.33333333333333337]
        for h in result.history
    )


def test_ga_trajectory_golden_unchanged_by_tracing(tmp_path):
    """Telemetry is pure observation: the same golden trajectory must
    fall out whether spans are being recorded or not."""
    from repro.obs import trace as obs_trace

    circuit = load_circuit("rand_100_7")
    config = GaConfig(
        key_length=10,
        population_size=8,
        generations=8,
        mutation="key_only",
        seed=42,
    )
    with obs_trace.tracing(tmp_path / "ga.jsonl"):
        result = GeneticAlgorithm(config).run(circuit, ones_fitness)
    assert not obs_trace.enabled()
    assert [s.best for s in result.history] == GA_RAND100_BESTS
    assert [s.mean for s in result.history] == GA_RAND100_MEANS
    assert _champion_sha(result.best_genotype) == GA_RAND100_SHA
    # and the trace actually recorded the loop's stages
    spans = (tmp_path / "ga.jsonl").read_text()
    assert '"loop.run"' in spans and '"loop.evaluate"' in spans
