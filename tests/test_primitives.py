"""The composable locking-primitive API: registry, genes, alphabets.

Covers the PRIMITIVES registry contract, per-primitive sample → apply →
decode round-trips, repair invariants over mixed alphabets, kind-aware
operators, composite (link + scope) fitness aggregation, Verilog export
of every primitive's gates, spec/fingerprint semantics of the
``alphabet`` field, and a mixed-alphabet end-to-end engine run whose
champion record names per-gene primitive kinds.
"""

from __future__ import annotations

import json

import pytest

from repro.api.engines import genotype_from_record, genotype_record
from repro.api.spec import ExperimentSpec, SweepSpec
from repro.circuits import load_circuit
from repro.ec.fitness import SpecFitness
from repro.ec.genotype import (
    genotype_is_valid,
    genotype_key,
    genotype_kinds,
    random_genotype,
    repair_genotype,
)
from repro.ec.ga import GaConfig, GeneticAlgorithm
from repro.ec.operators import MutationConfig, mutate
from repro.errors import (
    EvolutionError,
    LockingError,
    RegistryError,
    SpecError,
)
from repro.io import load_locked_design, save_locked_design
from repro.locking import MuxGene
from repro.locking.genome_lock import genes_from_locked, lock_with_genes
from repro.locking.primitives import (
    DEFAULT_ALPHABET,
    AndOrGene,
    XorGene,
    genotype_overhead,
    get_primitive,
    primitive_for_gene,
    resolve_alphabet,
)
from repro.netlist import validate_netlist, write_verilog
from repro.registry import PRIMITIVES, available_primitives
from repro.sim import check_equivalence

MIXED = ("mux", "xor", "and_or")


@pytest.fixture(scope="module")
def rand100():
    return load_circuit("rand_100_7")


# ------------------------------------------------------------- registry
def test_builtin_primitives_registered():
    assert {"mux", "xor", "and_or"} <= set(available_primitives())


def test_primitive_instances_are_shared():
    assert get_primitive("mux") is get_primitive("mux")
    assert get_primitive("mux").kind == "mux"
    assert get_primitive("mux").scoring == "link"
    assert get_primitive("xor").scoring == "scope"
    assert get_primitive("and_or").scoring == "scope"


def test_resolve_alphabet_contract():
    assert resolve_alphabet(None) == DEFAULT_ALPHABET
    assert resolve_alphabet(["xor", "mux"]) == ("xor", "mux")
    with pytest.raises(LockingError, match="at least one"):
        resolve_alphabet(())
    with pytest.raises(LockingError, match="duplicate"):
        resolve_alphabet(("mux", "mux"))
    with pytest.raises(RegistryError, match="unknown locking primitive"):
        resolve_alphabet(("mux", "bogus"))
    with pytest.raises(LockingError, match="did you mean"):
        resolve_alphabet("mux,xor")  # a string is not a name sequence
    with pytest.raises(LockingError, match="sequence of primitive names"):
        resolve_alphabet(5)  # not iterable at all
    with pytest.raises(LockingError, match="ordered sequence"):
        resolve_alphabet({"mux", "xor"})  # sets have no stable order


# --------------------------------------------- per-primitive round trip
@pytest.mark.parametrize("kind", sorted(["mux", "xor", "and_or"]))
def test_sample_apply_decode_roundtrip(rand100, kind):
    """Every primitive: sample a gene, apply it, decode it back."""
    import numpy as np

    primitive = get_primitive(kind)
    rng = np.random.default_rng(5)
    work = rand100.copy()
    gene = primitive.sample(work, rng)
    assert gene is not None and gene.kind == kind
    assert primitive.applicable(work, gene)
    rec = primitive.apply_gene(work, gene, "keyinput0")
    validate_netlist(work)
    assert primitive.can_decode(rec)
    assert primitive.decode(rec).key_tuple() == gene.key_tuple()
    # overhead accounting matches what was actually inserted
    assert len(work) - len(rand100) == primitive.overhead_gates(gene)


def test_mux_gene_key_tuple_is_untagged_for_cache_compat():
    gene = MuxGene("a", "b", "c", "d", 1)
    assert gene.key_tuple() == ("a", "b", "c", "d", 1)
    assert genotype_key([gene]) == (("a", "b", "c", "d", 1),)


def test_keygate_gene_key_tuples_are_tagged():
    assert XorGene("a", "b", 0).key_tuple() == ("xor", "a", "b", 0)
    assert AndOrGene("a", "b", 1).key_tuple() == ("and_or", "a", "b", 1)


def test_keygate_genes_validate_key_bit():
    with pytest.raises(LockingError, match="0/1"):
        XorGene("a", "b", 2)
    with pytest.raises(LockingError, match="0/1"):
        AndOrGene("a", "b", -1)


# ------------------------------------------------------ mixed genotypes
def test_mixed_genotype_locks_and_roundtrips(rand100):
    genes = random_genotype(rand100, 10, seed_or_rng=3, alphabet=MIXED)
    kinds = set(genotype_kinds(genes))
    assert len(kinds) >= 2, f"seed 3 should mix kinds, got {kinds}"
    assert genotype_is_valid(rand100, genes)
    locked = lock_with_genes(rand100, genes)
    validate_netlist(locked.netlist)
    assert locked.key.bits == tuple(g.k for g in genes)
    assert locked.scheme.startswith("genotype-")
    res = check_equivalence(
        rand100, locked.netlist, key_right=dict(locked.key), seed_or_rng=1
    )
    assert res.equal
    decoded = genes_from_locked(locked)
    assert genotype_key(decoded) == genotype_key(genes)


def test_pure_mux_scheme_label_unchanged(rand100):
    genes = random_genotype(rand100, 4, seed_or_rng=2)
    assert lock_with_genes(rand100, genes).scheme == "dmux-genotype"


def test_mixed_genotype_overhead_accounting(rand100):
    genes = random_genotype(rand100, 8, seed_or_rng=3, alphabet=MIXED)
    expected = sum(2 if g.kind == "mux" else 1 for g in genes)
    assert genotype_overhead(genes) == expected
    locked = lock_with_genes(rand100, genes)
    assert len(locked.netlist) - len(rand100) == expected


def test_default_alphabet_genotype_matches_pre_refactor_stream(rand100):
    """alphabet=("mux",) must draw the exact historical RNG stream."""
    legacy = random_genotype(rand100, 6, seed_or_rng=11)
    explicit = random_genotype(
        rand100, 6, seed_or_rng=11, alphabet=("mux",)
    )
    assert genotype_key(legacy) == genotype_key(explicit)
    assert all(g.kind == "mux" for g in legacy)


def test_mixed_io_roundtrip(tmp_path, rand100):
    """Mixed-primitive locked designs save/load through the sidecar."""
    genes = random_genotype(rand100, 6, seed_or_rng=3, alphabet=MIXED)
    locked = lock_with_genes(rand100, genes)
    sidecar = save_locked_design(locked, tmp_path)
    again = load_locked_design(sidecar)
    assert again.key.bits == locked.key.bits
    assert genotype_key(genes_from_locked(again)) == genotype_key(genes)


# ------------------------------------------------------ decode failures
def test_two_key_decode_error_names_index_and_scheme(rand100):
    """Satellite: the error says *which* insertion failed and the scheme."""
    from repro.locking import DMuxLocking

    locked = DMuxLocking("two_key").lock(rand100, 4, seed_or_rng=5)
    with pytest.raises(
        LockingError, match=r"insertion 0 of scheme 'dmux-two_key'.*two_key"
    ):
        genes_from_locked(locked)


def test_rll_multi_consumer_cut_decode_error_names_index(rand100):
    from repro.locking import RandomLogicLocking

    locked = RandomLogicLocking().lock(rand100, 8, seed_or_rng=21)
    multi = [
        i for i, r in enumerate(locked.insertions)
        if len(r.rewired_pins) > 1
    ]
    assert multi, "fixture seed should produce a multi-consumer net cut"
    with pytest.raises(
        LockingError, match=rf"insertion {multi[0]} of scheme 'rll'"
    ):
        genes_from_locked(locked)


def test_rll_single_consumer_cuts_decode_to_xor_genes(rand100):
    """Single-consumer RLL net cuts ARE wire-level XOR genes."""
    from repro.locking import RandomLogicLocking

    locked = RandomLogicLocking().lock(rand100, 8, seed_or_rng=21)
    singles = [r for r in locked.insertions if len(r.rewired_pins) == 1]
    assert singles, "fixture seed should produce a single-consumer cut"
    gene = get_primitive("xor").decode(singles[0])
    assert gene.kind == "xor"
    assert gene.f == singles[0].locked_signal
    assert gene.k == singles[0].key_bit


# ---------------------------------------------------- repair invariants
@pytest.mark.parametrize("kind", sorted(["mux", "xor", "and_or"]))
def test_repair_is_noop_on_valid_single_kind_genotype(rand100, kind):
    genes = random_genotype(rand100, 6, seed_or_rng=7, alphabet=(kind,))
    repaired = repair_genotype(rand100, genes, seed_or_rng=99)
    assert genotype_key(repaired) == genotype_key(genes)


def test_repair_is_noop_on_valid_mixed_genotype(rand100):
    genes = random_genotype(rand100, 10, seed_or_rng=3, alphabet=MIXED)
    repaired = repair_genotype(rand100, genes, seed_or_rng=123)
    assert genotype_key(repaired) == genotype_key(genes)


def test_repair_deterministic_and_kind_preserving(rand100):
    """Broken mixed genotypes repair deterministically, within-kind."""
    genes = random_genotype(rand100, 8, seed_or_rng=3, alphabet=MIXED)
    broken = genes[:7] + [genes[0]]  # duplicate wire usage
    assert not genotype_is_valid(rand100, broken)
    once = repair_genotype(rand100, broken, seed_or_rng=5)
    twice = repair_genotype(rand100, broken, seed_or_rng=5)
    assert genotype_key(once) == genotype_key(twice)
    assert genotype_is_valid(rand100, once)
    # repair replaced the offending gene with one of the same kind
    assert genotype_kinds(once) == genotype_kinds(broken)


def test_repair_falls_back_across_kinds_when_saturated():
    """A kind with no free sites degrades into another of the genotype's
    kinds instead of aborting the search (mirrors initialisation)."""
    from repro.locking import MuxGene
    from repro.locking.dmux import lockable_wires
    from repro.netlist import GateType, Netlist

    tiny = Netlist("tiny")
    for name in ("a", "b", "c"):
        tiny.add_input(name)
    tiny.add_gate("g_and", GateType.AND, ["a", "b"])
    tiny.add_gate("g_xor", GateType.XOR, ["g_and", "c"])
    tiny.add_gate("g_not", GateType.NOT, ["g_xor"])
    tiny.add_gate("g_or", GateType.OR, ["g_not", "a"])
    tiny.add_output("g_or")
    tiny.add_output("g_xor")

    wires = lockable_wires(tiny)
    xors = [XorGene(f, g, 0) for f, g in wires[:-1]]
    # conflicting MUX gene: one free wire left, a pair needs two — its
    # own kind cannot host it, the genotype's xor kind can.
    clash = MuxGene(
        wires[0][0], wires[0][1], wires[1][0], wires[1][1], 0
    )
    repaired = repair_genotype(tiny, xors + [clash], seed_or_rng=3)
    assert genotype_is_valid(tiny, repaired)
    assert repaired[-1].kind == "xor"


def test_repair_fixes_stale_keygate_gene(rand100):
    genes = random_genotype(rand100, 4, seed_or_rng=3, alphabet=("xor",))
    broken = genes[:3] + [XorGene("ghost_a", "ghost_b", 0)]
    repaired = repair_genotype(rand100, broken, seed_or_rng=6)
    assert genotype_is_valid(rand100, repaired)
    assert repaired[3].kind == "xor"


# ------------------------------------------------- kind-aware operators
def test_mutate_flip_key_flips_any_kind(rand100):
    genes = random_genotype(rand100, 6, seed_or_rng=3, alphabet=MIXED)
    config = MutationConfig(flip_key=1.0, relocate=0.0, reroute_partner=0.0)
    mutated = mutate(rand100, genes, config, seed_or_rng=8)
    for old, new in zip(genes, mutated):
        assert new.kind == old.kind
        assert new.k == old.k ^ 1


def test_mutate_relocate_within_kind_by_default(rand100):
    genes = random_genotype(rand100, 8, seed_or_rng=3, alphabet=MIXED)
    config = MutationConfig(flip_key=0.0, relocate=1.0, reroute_partner=0.0)
    mutated = mutate(rand100, genes, config, seed_or_rng=9)
    assert genotype_kinds(mutated) == genotype_kinds(genes)


def test_mutate_relocate_draws_kind_from_alphabet(rand100):
    genes = random_genotype(rand100, 12, seed_or_rng=3, alphabet=("mux",))
    config = MutationConfig(flip_key=0.0, relocate=1.0, reroute_partner=0.0)
    mutated = mutate(
        rand100, genes, config, seed_or_rng=10, alphabet=MIXED
    )
    assert set(genotype_kinds(mutated)) - {"mux"}, (
        "full relocation over a mixed alphabet should introduce new kinds"
    )
    repaired = repair_genotype(rand100, mutated, seed_or_rng=11)
    assert genotype_is_valid(rand100, repaired)


def test_keygate_neighbor_keeps_driver_and_bit(rand100):
    import numpy as np

    primitive = get_primitive("xor")
    rng = np.random.default_rng(3)
    gene = primitive.sample(rand100, rng)
    moved = None
    for _ in range(50):  # drivers with a single fanout have no neighbour
        moved = primitive.neighbor(rand100, gene, set(), rng)
        if moved is not None:
            break
        gene = primitive.sample(rand100, rng)
    assert moved is not None
    assert moved.f == gene.f and moved.k == gene.k and moved.g != gene.g


# ------------------------------------------------------ fitness scoring
def test_pure_mux_fitness_identical_to_attack_accuracy(rand100):
    genes = random_genotype(rand100, 6, seed_or_rng=3)
    fit = SpecFitness(
        rand100, attack="muxlink", attack_params={"predictor": "bayes"}
    )
    from repro.attacks.muxlink.attack import MuxLinkAttack

    locked = lock_with_genes(rand100, genes)
    report = MuxLinkAttack(predictor="bayes").run(
        locked, seed_or_rng=fit.attack_seed
    )
    assert fit(genes) == float(report.accuracy)


def test_keygate_bits_score_as_leaked(rand100):
    """Scope-scored primitives are weak by construction: constant
    propagation distinguishes their hypotheses, so a pure key-gate
    genotype scores 1.0 (fully recovered)."""
    fit = SpecFitness(
        rand100, attack="muxlink", attack_params={"predictor": "bayes"}
    )
    for kind in ("xor", "and_or"):
        genes = random_genotype(rand100, 6, seed_or_rng=3, alphabet=(kind,))
        assert fit(genes) == 1.0, kind


def test_mixed_fitness_aggregates_between_extremes(rand100):
    fit = SpecFitness(
        rand100, attack="muxlink", attack_params={"predictor": "bayes"}
    )
    mux_only = random_genotype(rand100, 8, seed_or_rng=3)
    mixed = random_genotype(rand100, 8, seed_or_rng=3, alphabet=MIXED)
    v_mux, v_mixed = fit(mux_only), fit(mixed)
    assert v_mux <= v_mixed <= 1.0, (
        "key-gate genes can only leak more than MUX genes"
    )


# ------------------------------------------------ records / fingerprints
def test_genotype_record_names_kinds_and_roundtrips(rand100):
    genes = random_genotype(rand100, 6, seed_or_rng=3, alphabet=MIXED)
    record = genotype_record(genes)
    assert [r["kind"] for r in record] == list(genotype_kinds(genes))
    json.dumps(record)  # JSON-safe
    again = genotype_from_record(record)
    assert genotype_key(again) == genotype_key(genes)


def test_legacy_untagged_records_decode_as_mux():
    record = [{"f_i": "a", "g_i": "b", "f_j": "c", "g_j": "d", "k": 1}]
    (gene,) = genotype_from_record(record)
    assert isinstance(gene, MuxGene) and gene.kind == "mux"


#: pre-refactor fingerprints, captured on the seed implementation: the
#: alphabet field must not perturb them (default alphabet is elided).
PRE_ALPHABET_ENGINE_FP = "ff3be1e879591c14"
PRE_ALPHABET_STATIC_FP = "f1000c8592e853d8"
PRE_ALPHABET_SWEEP_FP = "470350c04b3f6f1f"


def test_default_alphabet_preserves_pre_refactor_fingerprints():
    engine = ExperimentSpec(
        circuit="rand_150_5", key_length=4, engine="ga", attack="muxlink",
        attack_params={"predictor": "bayes"}, seed=3,
    )
    static = ExperimentSpec(circuit="rand_100_7", key_length=8, seed=1)
    sweep = SweepSpec(base=static, axes={"key_length": [4, 6]})
    assert engine.fingerprint() == PRE_ALPHABET_ENGINE_FP
    assert static.fingerprint() == PRE_ALPHABET_STATIC_FP
    assert sweep.fingerprint() == PRE_ALPHABET_SWEEP_FP
    # explicit default == implicit default
    assert (
        engine.with_updates(alphabet=("mux",)).fingerprint()
        == engine.fingerprint()
    )


def test_alphabet_feeds_fingerprint_resolved():
    engine = ExperimentSpec(
        circuit="rand_150_5", key_length=4, engine="ga", attack="muxlink",
        seed=3,
    )
    mixed = engine.with_updates(alphabet=("mux", "xor"))
    assert mixed.fingerprint() != engine.fingerprint()
    # order matters: it indexes the per-gene kind draws
    assert (
        mixed.fingerprint()
        != engine.with_updates(alphabet=("xor", "mux")).fingerprint()
    )
    assert "alphabet" in mixed.deterministic_dict()
    assert "alphabet" not in engine.deterministic_dict()


def test_alphabet_null_means_default():
    """JSON specs may say "alphabet": null, like async_mode: null."""
    spec = ExperimentSpec.from_json(
        '{"circuit": "rand_100_7", "key_length": 4, "engine": "ga",'
        ' "alphabet": null}'
    )
    assert spec.alphabet == DEFAULT_ALPHABET
    assert (
        spec.fingerprint()
        == spec.with_updates(alphabet=("mux",)).fingerprint()
    )


def test_alphabet_spec_validation():
    engine = ExperimentSpec(
        circuit="rand_150_5", key_length=4, engine="ga", attack="muxlink",
        seed=3,
    )
    with pytest.raises(RegistryError, match="unknown locking primitive"):
        engine.with_updates(alphabet=("mystery",)).validate()
    with pytest.raises(SpecError, match="duplicate"):
        engine.with_updates(alphabet=("mux", "mux")).validate()
    static = ExperimentSpec(circuit="rand_100_7", key_length=8, seed=1)
    with pytest.raises(SpecError, match="static spec"):
        static.with_updates(alphabet=("mux", "xor")).validate()
    with pytest.raises(SpecError, match="did you mean"):
        engine.with_updates(alphabet="mux,xor")


def test_alphabet_as_sweep_axis_expands():
    sweep = SweepSpec(
        base=ExperimentSpec(
            circuit="rand_100_7", key_length=4, engine="ga",
            attack="muxlink", attack_params={"predictor": "bayes"}, seed=1,
        ),
        axes={"alphabet": [["mux"], ["mux", "xor"]]},
    )
    specs = sweep.expand()
    assert [s.resolved_alphabet() for s in specs] == [
        ("mux",), ("mux", "xor"),
    ]
    assert len({s.fingerprint() for s in specs}) == 2


# ----------------------------------------------------- engine config
def test_ga_config_validates_alphabet():
    with pytest.raises(RegistryError, match="unknown locking primitive"):
        GaConfig(alphabet=("nope",))
    assert GaConfig(alphabet=["mux", "xor"]).alphabet == ("mux", "xor")


def test_engine_code_never_names_mux_gene():
    """Registry-only dispatch: engine modules must not import MuxGene."""
    from pathlib import Path

    src = Path(__file__).resolve().parent.parent / "src" / "repro"
    engine_modules = [
        src / "api" / "engines.py",
        src / "ec" / "loop.py",
        src / "ec" / "ga.py",
        src / "ec" / "nsga2.py",
        src / "ec" / "alternatives.py",
        src / "ec" / "autolock.py",
        src / "ec" / "evaluator.py",
    ]
    for module in engine_modules:
        assert "MuxGene" not in module.read_text(), module


# --------------------------------------------------------- end to end
def test_mixed_alphabet_ga_end_to_end(rand100):
    """A short GA over a mixed alphabet: valid heterogeneous champion."""
    config = GaConfig(
        key_length=6, population_size=4, generations=2, seed=5,
        alphabet=("mux", "xor"),
    )
    fit = SpecFitness(
        rand100, attack="muxlink", attack_params={"predictor": "bayes"}
    )
    result = GeneticAlgorithm(config).run(rand100, fit)
    champion = result.best_genotype
    assert genotype_is_valid(rand100, champion)
    assert set(genotype_kinds(champion)) <= {"mux", "xor"}
    locked = lock_with_genes(rand100, champion)
    assert check_equivalence(
        rand100, locked.netlist, key_right=dict(locked.key), seed_or_rng=2
    ).equal
    record = genotype_record(champion)
    assert all("kind" in r for r in record)


def test_mixed_alphabet_run_experiment_records_kinds(rand100, tmp_path):
    from repro.api import run_experiment

    spec = ExperimentSpec(
        circuit="rand_100_7",
        key_length=6,
        engine="ga",
        engine_params={"population_size": 4, "generations": 2},
        attack="muxlink",
        attack_params={"predictor": "bayes"},
        seed=5,
        alphabet=("mux", "xor"),
        cache_path=str(tmp_path / "cache.json"),
    )
    result = run_experiment(spec)
    kinds = [g["kind"] for g in result.record["engine"]["best_genotype"]]
    assert set(kinds) <= {"mux", "xor"} and kinds
    assert result.record["spec"]["alphabet"] == ["mux", "xor"]
    # replay from the experiment cache rebuilds the mixed champion
    warm = run_experiment(spec)
    assert warm.from_cache
    rebuilt = warm.rebuild_locked()
    assert genotype_key(genes_from_locked(rebuilt)) == genotype_key(
        result.engine_outcome.best_genotype
    )


# ------------------------------------------------------ verilog export
def _verilog_for(rand100, alphabet, key_length=6, seed=3):
    genes = random_genotype(rand100, key_length, seed, alphabet=alphabet)
    locked = lock_with_genes(rand100, genes)
    return genes, locked, write_verilog(locked.netlist)


def test_verilog_export_mux_primitive(rand100):
    genes, locked, text = _verilog_for(rand100, ("mux",))
    # every key input is a module port
    for name in locked.key.names:
        assert f"input {name};  // key input" in text
    # two MUX assigns per gene, wired to the right key input
    for i, rec in enumerate(locked.insertions):
        assert f"assign {rec.mux_i} = keyinput{i} ?" in text
        assert f"assign {rec.mux_j} = keyinput{i} ?" in text
    assert text.count("?") == 2 * len(genes)


def test_verilog_export_xor_primitive(rand100):
    genes, locked, text = _verilog_for(rand100, ("xor",))
    for rec, gene in zip(locked.insertions, genes):
        expect = "xnor" if gene.k else "xor"
        assert f"{expect} " in text
        # the key gate instantiates with the cut driver and its key input
        assert f"({rec.keygate}, {rec.f}, {rec.key_name});" in text
    n_xor_gates = sum(
        1 for line in text.splitlines()
        if line.strip().startswith(("xor ", "xnor "))
    )
    base = sum(
        1 for g in rand100.gates.values() if g.gtype.value in ("XOR", "XNOR")
    )
    assert n_xor_gates == base + len(genes), "one key gate per gene, lossless"


def test_verilog_export_and_or_primitive(rand100):
    genes, locked, text = _verilog_for(rand100, ("and_or",))
    for rec, gene in zip(locked.insertions, genes):
        expect = "and" if gene.k else "or"
        assert f"({rec.keygate}, {rec.f}, {rec.key_name});" in text
        line = next(
            ln for ln in text.splitlines() if f"({rec.keygate}," in ln
        )
        assert line.strip().startswith(expect + " ")


def test_verilog_export_mixed_alphabet_fanout_rewired(rand100):
    genes, locked, text = _verilog_for(rand100, MIXED, key_length=8)
    # every key input appears exactly once as a port declaration
    for i in range(len(genes)):
        assert text.count(f"input keyinput{i};") == 1
    # key-gate outputs actually drive their rewired consumers
    for rec in locked.insertions:
        for consumer, _pin in rec.consumer_pins:
            gate_line = next(
                ln for ln in text.splitlines()
                if f"({consumer}," in ln or f"assign {consumer} =" in ln
            )
            inserted = getattr(rec, "keygate", None) or rec.mux_i
            assert any(
                name in gate_line
                for name in (
                    [rec.keygate] if hasattr(rec, "keygate")
                    else [rec.mux_i, rec.mux_j]
                )
            ), f"{consumer} not rewired to {inserted}: {gate_line}"
