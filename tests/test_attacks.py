"""End-to-end attack behaviour: MuxLink, SCOPE, SAT, random baseline."""

import numpy as np
import pytest

from repro.attacks import (
    MuxLinkAttack,
    RandomGuessAttack,
    SatAttack,
    ScopeAttack,
)
from repro.attacks.scope import propagate_constant
from repro.circuits import load_circuit
from repro.errors import AttackError
from repro.locking import DMuxLocking, RandomLogicLocking
from repro.netlist import GateType, Netlist
from repro.sim import check_equivalence


# ----------------------------------------------------------------- random
def test_random_guess_reports_all_bits(dmux_locked):
    report = RandomGuessAttack().run(dmux_locked, seed_or_rng=1)
    assert set(report.guesses) == set(dmux_locked.netlist.key_inputs)
    assert report.score.coverage == 1.0
    assert 0.0 <= report.accuracy <= 1.0


# ------------------------------------------------------------------ scope
def test_scope_cracks_rll(rll_locked):
    report = ScopeAttack().run(rll_locked, seed_or_rng=0)
    assert report.accuracy == 1.0, "constant propagation must crack XOR RLL"
    assert report.precision == 1.0


def test_scope_blind_on_dmux(dmux_locked):
    report = ScopeAttack().run(dmux_locked, seed_or_rng=0)
    assert report.score.coverage == 0.0, "symmetric MUX pairs give SCOPE nothing"
    assert report.accuracy == 0.5


def test_propagate_constant_counts():
    n = Netlist("p")
    n.add_input("a")
    n.add_input("k")
    n.add_gate("x", GateType.XOR, ["a", "k"])
    n.add_gate("z", GateType.AND, ["x", "a"])
    n.add_output("z")
    # k=0: XOR collapses to a wire.
    s0 = propagate_constant(n, {"k": 0})
    assert s0.n_wire == 1 and s0.n_constant == 0
    # k=1: XOR reduces to an inverter.
    s1 = propagate_constant(n, {"k": 1})
    assert s1.n_reduced == 1 and s1.n_wire == 0
    assert s0.total > s1.total


def test_propagate_constant_dominance():
    n = Netlist("d")
    n.add_input("a")
    n.add_input("k")
    n.add_gate("x", GateType.AND, ["a", "k"])
    n.add_gate("y", GateType.OR, ["x", "k"])
    n.add_output("y")
    # k=0 -> x=0 (const), y collapses to wire of x? y = OR(0, 0)=0 const.
    s = propagate_constant(n, {"k": 0})
    assert s.n_constant == 2


# -------------------------------------------------------------------- sat
@pytest.mark.parametrize("scheme_factory", [
    lambda: RandomLogicLocking(),
    lambda: DMuxLocking("shared"),
], ids=["rll", "dmux"])
def test_sat_attack_recovers_functional_key(scheme_factory):
    circuit = load_circuit("rand_60_4")
    locked = scheme_factory().lock(circuit, 8, seed_or_rng=2)
    report = SatAttack(max_iterations=128).run(locked, seed_or_rng=1)
    assert report.extra["status"] == "completed"
    assert report.extra["functional_equivalent"], "SAT attack must break both schemes"
    # Verify independently: recovered key restores the original function.
    key = {k: v for k, v in report.guesses.items()}
    res = check_equivalence(circuit, locked.netlist, key_right=key, seed_or_rng=3)
    assert res.equal


def test_sat_attack_dip_count_reported(dmux_locked):
    report = SatAttack().run(dmux_locked, seed_or_rng=0)
    assert report.extra["n_dips"] >= 1
    assert report.extra["conflicts"] >= 0
    assert report.runtime_s > 0


def test_sat_attack_budget_exhaustion(dmux_locked):
    report = SatAttack(max_iterations=1).run(dmux_locked, seed_or_rng=0)
    if report.extra["status"] != "completed":
        assert report.extra["status"] == "iteration_budget_exhausted"
        assert all(g is None for g in report.guesses.values())


def test_sat_attack_requires_keys(c17, rll_locked):
    unlocked = rll_locked
    bad = unlocked.__class__(
        netlist=c17, key=unlocked.key, scheme="x", original=c17, insertions=[]
    )
    with pytest.raises(AttackError):
        SatAttack().run(bad)


# ---------------------------------------------------------------- muxlink
def test_muxlink_validates_predictor():
    with pytest.raises(AttackError):
        MuxLinkAttack(predictor="nonsense")
    with pytest.raises(AttackError):
        MuxLinkAttack(ensemble=0)


def test_muxlink_no_sites_on_rll(rll_locked):
    report = MuxLinkAttack(predictor="bayes").run(rll_locked, seed_or_rng=0)
    assert report.extra["n_sites"] == 0
    assert report.accuracy == 0.5
    assert report.score.coverage == 0.0


@pytest.mark.parametrize("predictor,kwargs", [
    ("bayes", {}),
    ("mlp", {"epochs": 15, "n_train": 200}),
    ("gnn", {"epochs": 3, "n_train": 60}),
], ids=["bayes", "mlp", "gnn"])
def test_muxlink_runs_and_reports(predictor, kwargs, dmux_locked):
    report = MuxLinkAttack(predictor=predictor, **kwargs).run(
        dmux_locked, seed_or_rng=5
    )
    assert report.extra["n_sites"] == 16
    assert set(report.guesses) == set(dmux_locked.netlist.key_inputs)
    assert 0.0 <= report.accuracy <= 1.0
    assert report.attack == f"muxlink-{predictor}"


def test_muxlink_beats_random_on_average():
    """Averaged over circuits/seeds, MuxLink must clearly beat 50 %."""
    accs = []
    for cname in ["c1355_syn", "c1908_syn"]:
        circuit = load_circuit(cname)
        locked = DMuxLocking("shared").lock(circuit, 24, seed_or_rng=3)
        report = MuxLinkAttack(predictor="mlp", ensemble=2).run(locked, seed_or_rng=7)
        accs.append(report.accuracy)
    assert np.mean(accs) > 0.62, f"MuxLink too weak: {accs}"


def test_muxlink_threshold_creates_undecided(dmux_locked):
    report = MuxLinkAttack(predictor="bayes", threshold=1e9).run(
        dmux_locked, seed_or_rng=0
    )
    assert report.score.coverage == 0.0
    assert report.accuracy == 0.5


def test_muxlink_deterministic_given_seed(dmux_locked):
    a = MuxLinkAttack(predictor="mlp", epochs=10).run(dmux_locked, seed_or_rng=11)
    b = MuxLinkAttack(predictor="mlp", epochs=10).run(dmux_locked, seed_or_rng=11)
    assert a.guesses == b.guesses
