"""numpy NN library: gradient checks, losses, optimizers, training."""

import numpy as np
import pytest

from repro.ml import (
    Adam,
    Dropout,
    Linear,
    ReLU,
    Sequential,
    Sgd,
    Sigmoid,
    Tanh,
    bce_with_logits,
    gradient_check,
    mse_loss,
)
from repro.ml.network import fit

_SUM_SQ = lambda out: (float((out**2).sum()), 2 * out)


@pytest.mark.parametrize(
    "layer_factory",
    [
        lambda: Linear(4, 3, seed_or_rng=1, name="lin"),
        lambda: ReLU(),
        lambda: Tanh(),
        lambda: Sigmoid(),
        lambda: Sequential(
            [Linear(4, 5, seed_or_rng=2, name="a"), Tanh(), Linear(5, 2, seed_or_rng=3, name="b")]
        ),
    ],
    ids=["linear", "relu", "tanh", "sigmoid", "sequential"],
)
def test_gradient_checks(layer_factory):
    rng = np.random.default_rng(0)
    x = rng.normal(size=(6, 4)) + 0.05  # offset avoids ReLU kinks at 0
    layer = layer_factory()
    errors = gradient_check(layer, x, _SUM_SQ)
    for name, err in errors.items():
        assert err < 1e-5, f"{name}: relative error {err}"


def test_dropout_train_vs_eval():
    layer = Dropout(0.5, seed_or_rng=1)
    x = np.ones((4, 10))
    assert np.array_equal(layer.forward(x, train=False), x)
    out = layer.forward(x, train=True)
    assert set(np.unique(out)).issubset({0.0, 2.0})
    grad = layer.backward(np.ones_like(x))
    assert np.array_equal(grad, out)  # same mask applied
    with pytest.raises(ValueError):
        Dropout(1.0)


def test_linear_shapes_and_params():
    layer = Linear(3, 7, seed_or_rng=0, name="l")
    out = layer.forward(np.zeros((2, 3)))
    assert out.shape == (2, 7)
    params = layer.params()
    assert [p.value.shape for p in params] == [(3, 7), (7,)]
    assert params[0].name == "l.W"


def test_bce_with_logits_matches_manual():
    logits = np.array([0.0, 2.0, -2.0])
    targets = np.array([1.0, 1.0, 0.0])
    loss, grad = bce_with_logits(logits, targets)
    sig = 1 / (1 + np.exp(-logits))
    manual = -(targets * np.log(sig) + (1 - targets) * np.log(1 - sig)).mean()
    assert loss == pytest.approx(manual, rel=1e-9)
    assert grad == pytest.approx((sig - targets) / 3, rel=1e-9)


def test_bce_extreme_logits_stable():
    loss, grad = bce_with_logits(np.array([1000.0, -1000.0]), np.array([1.0, 0.0]))
    assert np.isfinite(loss) and np.all(np.isfinite(grad))
    assert loss < 1e-6


def test_loss_shape_validation():
    with pytest.raises(ValueError):
        bce_with_logits(np.zeros(3), np.zeros(4))
    with pytest.raises(ValueError):
        mse_loss(np.zeros((2, 1)), np.zeros(2))


def test_mse_loss():
    loss, grad = mse_loss(np.array([1.0, 2.0]), np.array([0.0, 0.0]))
    assert loss == pytest.approx(2.5)
    assert grad == pytest.approx(np.array([1.0, 2.0]))


@pytest.mark.parametrize("optimizer_cls", [Sgd, Adam], ids=["sgd", "adam"])
def test_optimizers_minimise_quadratic(optimizer_cls):
    layer = Linear(1, 1, seed_or_rng=0)
    opt = optimizer_cls(layer.params(), lr=0.05)
    x = np.array([[1.0]])
    losses = []
    for _ in range(200):
        out = layer.forward(x)
        loss, grad = mse_loss(out, np.array([[3.0]]))
        layer.backward(grad)
        opt.step()
        losses.append(loss)
    assert losses[-1] < 1e-3 < losses[0]


def test_optimizer_validation():
    layer = Linear(1, 1, seed_or_rng=0)
    with pytest.raises(ValueError):
        Sgd(layer.params(), lr=0.0)
    with pytest.raises(ValueError):
        Adam(layer.params(), lr=-1)


def test_sgd_momentum_converges():
    layer = Linear(1, 1, seed_or_rng=1)
    opt = Sgd(layer.params(), lr=0.02, momentum=0.9)
    x = np.array([[1.0]])
    for _ in range(200):
        loss, grad = mse_loss(layer.forward(x), np.array([[2.0]]))
        layer.backward(grad)
        opt.step()
    assert loss < 1e-3


def test_fit_learns_xor():
    x = np.array([[0, 0], [0, 1], [1, 0], [1, 1]], dtype=float)
    y = np.array([[0], [1], [1], [0]], dtype=float)
    model = Sequential(
        [Linear(2, 8, seed_or_rng=3), Tanh(), Linear(8, 1, seed_or_rng=4)]
    )
    history = fit(
        model, x, y, bce_with_logits, Adam(model.params(), lr=0.05),
        epochs=300, batch_size=4, seed_or_rng=5,
    )
    assert history[-1] < 0.05
    pred = (model.forward(x) > 0).astype(int)
    assert np.array_equal(pred, y.astype(int))


def test_gradients_accumulate_until_step():
    layer = Linear(2, 2, seed_or_rng=0)
    x = np.ones((1, 2))
    layer.forward(x)
    layer.backward(np.ones((1, 2)))
    first = layer.weight.grad.copy()
    layer.forward(x)
    layer.backward(np.ones((1, 2)))
    assert np.allclose(layer.weight.grad, 2 * first)
