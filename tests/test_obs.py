"""Telemetry subsystem: metrics registry, span tracer, summarize, logs.

The disabled path is the contract that matters most — ``repro.obs`` is
imported by the search loop, evaluators, and runner unconditionally, so
with no ``--trace`` flag it must cost a single attribute check and
allocate nothing. The golden-trajectory suites exercise "installed but
off" implicitly; here the fast path, the enabled semantics, and the
end-to-end ``--trace`` → ``trace summarize`` pipeline get pinned
explicitly.
"""

from __future__ import annotations

import json
import logging

import pytest

from repro.api import ExperimentSpec, run_experiment
from repro.cli import main
from repro.obs import trace as obs_trace
from repro.obs.logs import configure_logging, get_logger
from repro.obs.metrics import LATENCY_BUCKETS, METRICS, MetricsRegistry
from repro.obs.summarize import format_table, load_spans, summarize


def _static_spec(**overrides) -> ExperimentSpec:
    base = dict(
        circuit="rand_150_5",
        key_length=4,
        scheme="dmux",
        attack="muxlink",
        attack_params={"predictor": "bayes"},
        seed=1,
    )
    base.update(overrides)
    return ExperimentSpec(**base)


# -- metrics registry ----------------------------------------------------

def test_counter_inc_labels_and_monotonicity():
    reg = MetricsRegistry()
    c = reg.counter("autolock_test_total", "help", labels=("op",))
    c.inc(op="a")
    c.inc(2, op="a")
    c.inc(op="b")
    assert c.value(op="a") == 3
    assert c.value(op="b") == 1
    assert c.value(op="never") == 0
    with pytest.raises(ValueError):
        c.inc(-1, op="a")
    with pytest.raises(ValueError):
        c.inc(op="a", wrong_label="x")


def test_gauge_set_and_inc():
    reg = MetricsRegistry()
    g = reg.gauge("autolock_test_depth")
    g.set(7)
    assert g.value() == 7.0
    g.inc(-3)
    assert g.value() == 4.0  # gauges may go down


def test_histogram_buckets_sum_count_and_quantiles():
    reg = MetricsRegistry()
    h = reg.histogram("autolock_test_seconds", buckets=(0.1, 1.0, 10.0))
    for value in (0.05, 0.05, 0.5, 5.0):
        h.observe(value)
    snap = h.snapshot_values()[""]
    assert snap["count"] == 4
    assert snap["sum"] == pytest.approx(5.6)
    # quantiles report the bucket upper bound holding the target rank
    assert snap["p50"] == 0.1
    assert snap["p95"] == 10.0
    text = reg.render_prometheus()
    assert 'autolock_test_seconds_bucket{le="0.1"} 2' in text
    assert 'autolock_test_seconds_bucket{le="1"} 3' in text
    assert 'autolock_test_seconds_bucket{le="10"} 4' in text
    assert 'autolock_test_seconds_bucket{le="+Inf"} 4' in text
    assert "autolock_test_seconds_count 4" in text


def test_histogram_observation_above_every_bucket_lands_in_inf():
    reg = MetricsRegistry()
    h = reg.histogram("autolock_test_seconds", buckets=(0.1,))
    h.observe(99.0)
    text = reg.render_prometheus()
    assert 'autolock_test_seconds_bucket{le="0.1"} 0' in text
    assert 'autolock_test_seconds_bucket{le="+Inf"} 1' in text
    assert "autolock_test_seconds_count 1" in text


def test_registry_idempotent_and_conflict_checked():
    reg = MetricsRegistry()
    first = reg.counter("autolock_x_total", labels=("k",))
    assert reg.counter("autolock_x_total", labels=("k",)) is first
    with pytest.raises(ValueError):
        reg.gauge("autolock_x_total")  # kind mismatch
    with pytest.raises(ValueError):
        reg.counter("autolock_x_total", labels=("other",))  # label mismatch
    with pytest.raises(ValueError):
        reg.counter("bad name!")


def test_prometheus_rendering_sorts_and_escapes_labels():
    reg = MetricsRegistry()
    c = reg.counter("autolock_esc_total", "with \\ and \"", labels=("p",))
    c.inc(p='say "hi"\nplease\\now')
    text = reg.render_prometheus()
    assert "# HELP autolock_esc_total" in text
    assert "# TYPE autolock_esc_total counter" in text
    assert '{p="say \\"hi\\"\\nplease\\\\now"}' in text
    assert text.endswith("\n")


def test_snapshot_shape():
    reg = MetricsRegistry()
    reg.counter("autolock_a_total").inc()
    reg.histogram("autolock_b_seconds")
    snap = reg.snapshot()
    assert snap["autolock_a_total"]["kind"] == "counter"
    assert snap["autolock_a_total"]["values"][""] == 1
    assert snap["autolock_b_seconds"]["values"] == {}  # no observations yet


def test_global_registry_has_the_instrumented_families():
    # Importing the instrumented modules registers their metrics; the
    # /metrics endpoint and dashboards rely on these names existing.
    import repro.api.runner  # noqa: F401
    import repro.dist.worker  # noqa: F401
    import repro.ec.evaluator  # noqa: F401
    import repro.serve.server  # noqa: F401

    names = set(METRICS.snapshot())
    for family in (
        "autolock_experiments_total",
        "autolock_eval_batch_seconds",
        "autolock_cache_lookups_total",
        "autolock_loop_backlog",
        "autolock_http_requests_total",
        "autolock_queue_points",
        "autolock_worker_points_total",
    ):
        assert family in names
    assert LATENCY_BUCKETS == tuple(sorted(LATENCY_BUCKETS))


# -- tracer ---------------------------------------------------------------

def test_disabled_fast_path_is_one_shared_object():
    assert not obs_trace.enabled()
    first = obs_trace.span("anything", k=1)
    second = obs_trace.span("other")
    assert first is second, "disabled span() must not allocate"
    with first as s:
        s.set(more=2)  # all no-ops
    with obs_trace.tracing(None):
        assert not obs_trace.enabled()


def test_spans_nest_and_link_parents(tmp_path):
    path = tmp_path / "trace.jsonl"
    with obs_trace.tracing(path, run="t"):
        assert obs_trace.enabled()
        with obs_trace.span("outer", a=1):
            with obs_trace.span("inner") as inner:
                inner.set(b=2)
        with obs_trace.span("sibling"):
            pass
    assert not obs_trace.enabled()
    lines = [json.loads(l) for l in path.read_text().splitlines()]
    assert lines[0]["meta"]["run"] == "t"
    by_name = {r["name"]: r for r in lines[1:]}
    assert by_name["inner"]["parent"] == by_name["outer"]["span"]
    assert by_name["outer"]["parent"] is None
    assert by_name["sibling"]["parent"] is None
    assert by_name["inner"]["attrs"] == {"b": 2}
    assert by_name["outer"]["wall_s"] >= by_name["inner"]["wall_s"]


def test_span_records_error_attr_and_still_emits(tmp_path):
    path = tmp_path / "trace.jsonl"
    with pytest.raises(RuntimeError):
        with obs_trace.tracing(path):
            with obs_trace.span("boom"):
                raise RuntimeError("x")
    record = [json.loads(l) for l in path.read_text().splitlines()][-1]
    assert record["name"] == "boom"
    assert record["attrs"]["error"] == "RuntimeError"


def test_outermost_tracing_owner_wins(tmp_path):
    outer, inner = tmp_path / "outer.jsonl", tmp_path / "inner.jsonl"
    with obs_trace.tracing(outer):
        with obs_trace.tracing(inner):  # joins, does not switch files
            with obs_trace.span("joined"):
                pass
        assert obs_trace.enabled(), "inner exit must not stop the tracer"
    assert not inner.exists()
    assert any('"joined"' in l for l in outer.read_text().splitlines())


def test_start_tracing_twice_raises(tmp_path):
    obs_trace.start_tracing(tmp_path / "a.jsonl")
    try:
        with pytest.raises(RuntimeError):
            obs_trace.start_tracing(tmp_path / "b.jsonl")
    finally:
        obs_trace.stop_tracing()


def test_derive_worker_path():
    derived = obs_trace.derive_worker_path("out/run.jsonl", "w-1")
    assert str(derived) == "out/run-w-1.jsonl"
    assert str(obs_trace.derive_worker_path("t", "w")) == "t-w.jsonl"


# -- summarize ------------------------------------------------------------

def _span(file, span, parent, name, wall, cpu=0.0):
    return {"file": file, "span": span, "parent": parent, "name": name,
            "wall_s": wall, "cpu_s": cpu}


def test_summarize_self_time_and_coverage():
    spans = [
        _span(0, 1, None, "root", 10.0),
        _span(0, 2, 1, "stage.a", 6.0),
        _span(0, 3, 1, "stage.b", 3.0),
        _span(0, 4, 2, "stage.a.child", 5.0),
    ]
    summary = summarize(spans)
    rows = {r["name"]: r for r in summary["rows"]}
    assert rows["root"]["self_s"] == pytest.approx(1.0)
    assert rows["stage.a"]["self_s"] == pytest.approx(1.0)
    assert summary["root_wall_s"] == pytest.approx(10.0)
    assert summary["coverage"] == pytest.approx(0.9)
    # sorted by cumulative wall, descending
    assert summary["rows"][0]["name"] == "root"
    assert summary["rows"][1]["name"] == "stage.a"


def test_summarize_keeps_multi_file_span_ids_apart():
    # Same span ids in two files (two worker processes) must not link.
    spans = [
        _span(0, 1, None, "worker.run", 4.0),
        _span(0, 2, 1, "worker.point", 4.0),
        _span(1, 1, None, "worker.run", 6.0),
        _span(1, 2, 1, "worker.point", 5.0),
    ]
    summary = summarize(spans)
    assert summary["root_wall_s"] == pytest.approx(10.0)
    assert summary["coverage"] == pytest.approx(0.9)
    rows = {r["name"]: r for r in summary["rows"]}
    assert rows["worker.point"]["calls"] == 2


def test_load_spans_skips_meta_and_torn_lines(tmp_path):
    a = tmp_path / "a.jsonl"
    a.write_text(
        json.dumps({"meta": {"pid": 1}}) + "\n"
        + json.dumps(_span(0, 1, None, "x", 1.0)) + "\n"
        + '{"torn'  # killed writer mid-line
    )
    spans = load_spans([a])
    assert [s["name"] for s in spans] == ["x"]
    assert spans[0]["file"] == 0


def test_format_table_has_header_rows_and_footer():
    summary = summarize([
        _span(0, 1, None, "root", 2.0),
        _span(0, 2, 1, "leaf", 1.9),
    ])
    text = format_table(summary)
    assert "stage" in text and "calls" in text and "p95_s" in text
    assert "root" in text and "leaf" in text
    assert "coverage 95.0%" in text
    assert "leaf" not in format_table(summary, limit=1)


# -- logs -----------------------------------------------------------------

def test_configure_logging_writes_to_stdout_with_worker_prefix(capsys):
    configure_logging("INFO", worker_id="w-42")
    get_logger("dist.worker").info("claimed point abc")
    out = capsys.readouterr().out
    assert "[w-42] autolock.dist.worker: claimed point abc" in out
    assert "INFO" in out


def test_configure_logging_idempotent_and_env_level(capsys, monkeypatch):
    configure_logging("INFO")
    configure_logging("INFO")
    root = logging.getLogger("autolock")
    assert len(root.handlers) == 1, "re-configuring must not stack handlers"
    monkeypatch.setenv("AUTOLOCK_LOG", "WARNING")
    configure_logging()  # level from the environment
    get_logger("x").info("hidden")
    get_logger("x").warning("shown")
    out = capsys.readouterr().out
    assert "hidden" not in out and "shown" in out
    configure_logging("INFO")  # restore for later tests


# -- end to end: --trace through the runner and CLI -----------------------

def test_traced_experiment_writes_spans_and_summarizes(tmp_path):
    trace_path = tmp_path / "run.jsonl"
    spec = _static_spec(trace=str(trace_path))
    result = run_experiment(spec)
    assert result.record, "traced run must still produce a record"
    assert not obs_trace.enabled(), "runner must stop its own tracer"

    spans = load_spans([trace_path])
    names = {s["name"] for s in spans}
    assert {"experiment", "experiment.lock", "experiment.attack"} <= names
    summary = summarize(spans)
    assert summary["coverage"] >= 0.5  # lock+attack dominate a static run

    # identical spec minus the trace: same fingerprint, same record
    untraced = run_experiment(_static_spec())
    assert untraced.fingerprint == result.fingerprint
    assert (
        untraced.deterministic_record() == result.deterministic_record()
    )


def test_cli_trace_summarize_table_json_and_coverage_gate(
    tmp_path, capsys
):
    trace_path = tmp_path / "run.jsonl"
    run_experiment(_static_spec(trace=str(trace_path)))

    assert main(["trace", "summarize", str(trace_path)]) == 0
    out = capsys.readouterr().out
    assert "experiment.attack" in out and "coverage" in out

    assert main(["trace", "summarize", str(trace_path), "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["spans"] >= 3
    assert 0.0 <= payload["coverage"] <= 1.0

    assert main([
        "trace", "summarize", str(trace_path), "--min-coverage", "101",
    ]) == 1
    capsys.readouterr()
    assert main(["trace", "summarize", str(tmp_path / "nope.jsonl")]) == 2


def test_cli_run_passes_trace_flag_through(tmp_path, capsys):
    spec_path = tmp_path / "spec.json"
    spec_path.write_text(json.dumps(_static_spec().to_dict()))
    trace_path = tmp_path / "cli.jsonl"
    assert main([
        "run", str(spec_path), "--trace", str(trace_path),
    ]) == 0
    capsys.readouterr()
    assert {"experiment"} <= {s["name"] for s in load_spans([trace_path])}


def _child_must_be_untraced_and_open_its_own(path):
    assert not obs_trace.enabled(), "fork must not leak the parent tracer"
    with obs_trace.tracing(path, owner="child"):
        with obs_trace.span("child.work"):
            pass


def test_forked_child_drops_inherited_tracer_and_traces_itself(tmp_path):
    """A forked worker shares the parent's file offset; writing through
    the inherited tracer would interleave bytes into the parent's file.
    The at-fork hook drops it so the child's own ``tracing()`` call —
    which yields to an already-active tracer — opens its derived file."""
    import multiprocessing

    if "fork" not in multiprocessing.get_all_start_methods():
        pytest.skip("no fork start method on this platform")
    ctx = multiprocessing.get_context("fork")
    parent_path = tmp_path / "parent.jsonl"
    child_path = tmp_path / "child.jsonl"
    with obs_trace.tracing(parent_path, owner="parent"):
        with obs_trace.span("parent.spawn"):
            child = ctx.Process(
                target=_child_must_be_untraced_and_open_its_own,
                args=(str(child_path),),
            )
            child.start()
            child.join()
    assert child.exitcode == 0
    child_names = {s["name"] for s in load_spans([child_path])}
    assert child_names == {"child.work"}
    parent_names = {s["name"] for s in load_spans([parent_path])}
    assert "child.work" not in parent_names
    assert "parent.spawn" in parent_names
