"""Gate semantics and arity rules."""

import itertools

import numpy as np
import pytest

from repro.errors import NetlistError
from repro.netlist.gates import (
    Gate,
    GateType,
    arity_bounds,
    check_arity,
    evaluate_bits,
    evaluate_words,
)

_TRUTH_2IN = {
    GateType.AND: lambda a, b: a & b,
    GateType.NAND: lambda a, b: 1 - (a & b),
    GateType.OR: lambda a, b: a | b,
    GateType.NOR: lambda a, b: 1 - (a | b),
    GateType.XOR: lambda a, b: a ^ b,
    GateType.XNOR: lambda a, b: 1 - (a ^ b),
}


@pytest.mark.parametrize("gtype", sorted(_TRUTH_2IN, key=lambda t: t.value))
def test_two_input_truth_tables(gtype):
    ref = _TRUTH_2IN[gtype]
    for a, b in itertools.product([0, 1], repeat=2):
        assert evaluate_bits(gtype, [a, b]) == ref(a, b), (gtype, a, b)


def test_not_buf_truth_tables():
    assert evaluate_bits(GateType.NOT, [0]) == 1
    assert evaluate_bits(GateType.NOT, [1]) == 0
    assert evaluate_bits(GateType.BUF, [0]) == 0
    assert evaluate_bits(GateType.BUF, [1]) == 1


def test_mux_truth_table():
    for s, d0, d1 in itertools.product([0, 1], repeat=3):
        expected = d0 if s == 0 else d1
        assert evaluate_bits(GateType.MUX, [s, d0, d1]) == expected


def test_constants():
    assert evaluate_bits(GateType.CONST0, []) == 0
    assert evaluate_bits(GateType.CONST1, []) == 1


@pytest.mark.parametrize("gtype", [GateType.AND, GateType.OR, GateType.XOR])
def test_nary_reduction(gtype):
    # Three-input gates reduce pairwise left to right.
    for bits in itertools.product([0, 1], repeat=3):
        two = evaluate_bits(gtype, [evaluate_bits(gtype, list(bits[:2])), bits[2]])
        assert evaluate_bits(gtype, list(bits)) == two


def test_evaluate_words_matches_bits():
    rng = np.random.default_rng(1)
    words = [rng.integers(0, 2**63, size=2).astype(np.uint64) for _ in range(2)]
    out = evaluate_words(GateType.NAND, words)
    assert out.dtype == np.uint64
    assert np.array_equal(out, ~(words[0] & words[1]))


def test_arity_bounds_and_check():
    assert arity_bounds(GateType.MUX) == (3, 3)
    assert arity_bounds(GateType.NOT) == (1, 1)
    lo, hi = arity_bounds(GateType.AND)
    assert lo == 2 and hi is None
    with pytest.raises(NetlistError):
        check_arity(GateType.NOT, 2)
    with pytest.raises(NetlistError):
        check_arity(GateType.AND, 1)
    with pytest.raises(NetlistError):
        check_arity(GateType.MUX, 2)


def test_gate_dataclass_validation():
    with pytest.raises(NetlistError):
        Gate("g", GateType.MUX, ("a", "b"))
    gate = Gate("g", GateType.AND, ("a", "b"))
    rewired = gate.with_fanin(1, "c")
    assert rewired.fanins == ("a", "c")
    assert gate.fanins == ("a", "b"), "original gate must stay immutable"
    with pytest.raises(NetlistError):
        gate.with_fanin(5, "c")


def test_gate_str():
    assert str(Gate("g", GateType.AND, ("a", "b"))) == "g = AND(a, b)"


def test_evaluate_words_rejects_constants():
    with pytest.raises(NetlistError):
        evaluate_words(GateType.CONST0, [])
