"""Store operations: ``autolock store retry`` and ``autolock store gc``.

Retry contract: a transiently-poisoned sweep point that exhausted its
attempt budget is parked as ``failed``; the retry verb flips it back to
``pending`` with a fresh budget so the next worker completes it once the
transient cause is gone. Exit codes: 0 = requeued, 1 = nothing failed,
2 = missing store / unknown sweep.

GC contract: experiment records whose stored spec no longer fingerprints
to its own key (schema drift, removed plugins, garbage) are dropped, the
store is compacted (VACUUM), and the report counts bytes reclaimed —
while resolvable records and per-genotype fitness namespaces survive.
"""

from __future__ import annotations

import json

import pytest

import repro.dist.worker as worker_mod
from repro.api import ExperimentSpec, SweepSpec, run_experiment
from repro.api.runner import EXPERIMENT_NAMESPACE
from repro.cli import main
from repro.dist import SweepScheduler, Worker
from repro.dist.scheduler import _record_key
from repro.store import SQLiteStore, ensure_queue, gc_store


def _sweep(cache_path, n_points: int = 2) -> SweepSpec:
    return SweepSpec(
        name="retry_sweep",
        base=ExperimentSpec(
            circuit="rand_150_5",
            key_length=4,
            scheme="dmux",
            attack="muxlink",
            attack_params={"predictor": "bayes"},
            seed=1,
        ),
        axes={"key_length": [4, 6][:n_points]},
        cache_path=str(cache_path),
    )


# ------------------------------------------------------------- retry
def test_store_retry_requeues_transient_failure_to_success(
    tmp_path, monkeypatch, capsys
):
    """Poison-pill point fails out, `store retry` requeues it, and the
    retried run completes once the transient cause is gone."""
    store_path = tmp_path / "store.sqlite"
    sweep = _sweep(store_path)
    scheduler = SweepScheduler(sweep, max_attempts=1)
    scheduler.enqueue()
    poisoned_fp = sweep.expand()[0].fingerprint()
    flag = tmp_path / "attack-backend-down"
    flag.touch()

    real_run = worker_mod.run_experiment

    def flaky_run(spec, **kwargs):
        if spec.fingerprint() == poisoned_fp and flag.exists():
            raise RuntimeError("transient attack backend outage")
        return real_run(spec, **kwargs)

    monkeypatch.setattr(worker_mod, "run_experiment", flaky_run)

    report = Worker(
        store_path=str(store_path), sweep_id=scheduler.sweep_id,
        max_attempts=1,
    ).run()
    assert report.points_failed == 1 and report.points_completed == 1

    store = SQLiteStore(store_path)
    rows = {p["fingerprint"]: p for p in store.points(scheduler.sweep_id)}
    assert rows[poisoned_fp]["status"] == "failed"
    assert "transient attack backend outage" in rows[poisoned_fp]["error"]
    store.close()

    # The transient cause clears; retry requeues with a fresh budget.
    flag.unlink()
    assert (
        main(["store", "retry", str(store_path), scheduler.sweep_id]) == 0
    )
    assert "requeued 1 failed point" in capsys.readouterr().out
    store = SQLiteStore(store_path)
    rows = {p["fingerprint"]: p for p in store.points(scheduler.sweep_id)}
    assert rows[poisoned_fp]["status"] == "pending"
    assert rows[poisoned_fp]["attempts"] == 0
    assert rows[poisoned_fp]["error"] is None
    store.close()

    report = Worker(
        store_path=str(store_path), sweep_id=scheduler.sweep_id,
        max_attempts=1,
    ).run()
    assert report.points_completed == 1 and report.points_failed == 0
    store = SQLiteStore(store_path)
    assert all(
        p["status"] == "done" for p in store.points(scheduler.sweep_id)
    ), "the retried point must succeed once the transient cause is gone"
    store.close()

    # Nothing failed anymore: exit code 1 says "nothing to retry".
    assert (
        main(["store", "retry", str(store_path), scheduler.sweep_id]) == 1
    )
    assert "no failed points" in capsys.readouterr().out


def test_store_retry_error_paths(tmp_path, capsys):
    missing = tmp_path / "nope.sqlite"
    assert main(["store", "retry", str(missing), "deadbeef"]) == 2
    assert "no store at" in capsys.readouterr().err

    # Store exists but the sweep id is unknown.
    store_path = tmp_path / "store.sqlite"
    store = SQLiteStore(store_path)
    store.status()  # touch the database so the file exists
    store.close()
    assert main(["store", "retry", str(store_path), "deadbeef"]) == 2
    assert "no sweep" in capsys.readouterr().err


# ---------------------------------------------------------------- gc
def _seed_record(tmp_path):
    """One resolvable experiment record in a SQLite store."""
    store_path = tmp_path / "gc.sqlite"
    spec = ExperimentSpec(
        circuit="rand_150_5", key_length=4,
        attack="muxlink", attack_params={"predictor": "bayes"},
        seed=1, cache_path=str(store_path),
    )
    result = run_experiment(spec)
    # run_experiment persisted the record through the spec's cache_path.
    assert not result.from_cache
    return store_path, spec


def test_store_gc_drops_unresolvable_records_and_compacts(tmp_path, capsys):
    store_path, spec = _seed_record(tmp_path)
    store = SQLiteStore(store_path)
    # Stale records: a fingerprint that no longer matches its stored spec
    # (schema drift), a spec naming a de-registered plugin, and garbage.
    drifted = dict(store.get(EXPERIMENT_NAMESPACE, _record_key(spec)))
    store.put_many(EXPERIMENT_NAMESPACE, {
        '[["spec","0000000000000000"]]': drifted,
        '[["spec","1111111111111111"]]': {
            "spec": {"circuit": "rand_150_5", "attack": "laser"},
        },
        "not-a-spec-key": {"spec": {}},
    })
    # Fitness namespaces must never be collected.
    store.put_many("rand_150_5|fitness", {"k": 0.5})
    # Deleted bulk makes the VACUUM measurable.
    store.put_many(
        "bloat", {f"k{i}": "x" * 256 for i in range(2000)}
    )
    store.wipe_namespace("bloat")
    store.close()

    assert main(["store", "gc", str(store_path), "--json"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["examined"] == 4
    assert report["dropped"] == 3
    assert report["kept"] == 1
    assert report["bytes_reclaimed"] > 0, "VACUUM must reclaim the bloat"

    store = SQLiteStore(store_path)
    assert store.get(EXPERIMENT_NAMESPACE, _record_key(spec)) is not None
    assert store.get(EXPERIMENT_NAMESPACE, "not-a-spec-key") is None
    assert store.get("rand_150_5|fitness", "k") == 0.5
    store.close()

    # The surviving record still replays with zero fresh evaluations.
    warm = run_experiment(spec)
    assert warm.from_cache and warm.fresh_evaluations == 0


def test_store_gc_json_backend(tmp_path):
    """GC over the JSON store: same semantics, compaction via rewrite."""
    cache_path = tmp_path / "cache.json"
    spec = ExperimentSpec(
        circuit="rand_150_5", key_length=4,
        attack="muxlink", attack_params={"predictor": "bayes"},
        seed=2, cache_path=str(cache_path),
    )
    run_experiment(spec)
    from repro.store import JSONStore

    store = JSONStore(cache_path)
    store.put_many(EXPERIMENT_NAMESPACE, {"garbage-key": {"spec": {}}})
    report = gc_store(cache_path)
    assert report["examined"] == 2
    assert report["dropped"] == 1 and report["kept"] == 1
    assert run_experiment(spec).from_cache


def test_store_gc_missing_store_exits_2(tmp_path, capsys):
    assert main(["store", "gc", str(tmp_path / "nope.sqlite")]) == 2
    assert "no store at" in capsys.readouterr().err


def test_queue_retry_failed_api(tmp_path):
    """Direct WorkQueue.retry_failed: only failed rows flip, budget resets."""
    store = SQLiteStore(tmp_path / "q.sqlite")
    queue = ensure_queue(store)
    queue.enqueue_points("sw", {"a": {"x": 1}, "b": {"x": 2}})
    point = queue.claim("sw", "w1", ttl=60)
    assert queue.fail("sw", point.fingerprint, "w1", "boom", max_attempts=1) == "failed"
    assert queue.queue_counts("sw") == {"failed": 1, "pending": 1}
    assert queue.retry_failed("sw") == 1
    assert queue.queue_counts("sw") == {"pending": 2}
    rows = {p["fingerprint"]: p for p in store.points("sw")}
    assert rows[point.fingerprint]["attempts"] == 0
    assert queue.retry_failed("sw") == 0
    store.close()
