"""Genotype → phenotype mapping (lock_with_genes) and its inverse."""

import pytest

from repro.errors import LockingError
from repro.locking import DMuxLocking, MuxGene, lock_with_genes
from repro.locking.genome_lock import genes_from_locked
from repro.netlist import validate_netlist
from repro.sim import check_equivalence


def test_roundtrip_through_genotype(rand100):
    locked = DMuxLocking("shared").lock(rand100, 8, seed_or_rng=13)
    genes = genes_from_locked(locked)
    assert len(genes) == 8
    rebuilt = lock_with_genes(rand100, genes)
    validate_netlist(rebuilt.netlist)
    assert rebuilt.key.bits == locked.key.bits
    res = check_equivalence(
        locked.netlist,
        rebuilt.netlist,
        key_left=dict(locked.key),
        key_right=dict(rebuilt.key),
        seed_or_rng=2,
    )
    assert res.equal


def test_key_bits_equal_gene_bits(rand100):
    locked = DMuxLocking("shared").lock(rand100, 6, seed_or_rng=3)
    genes = genes_from_locked(locked)
    rebuilt = lock_with_genes(rand100, genes)
    assert rebuilt.key.bits == tuple(g.k for g in genes)
    assert rebuilt.scheme == "dmux-genotype"


def test_functional_equivalence_with_correct_key(rand100):
    locked = DMuxLocking("shared").lock(rand100, 8, seed_or_rng=4)
    genes = genes_from_locked(locked)
    rebuilt = lock_with_genes(rand100, genes)
    res = check_equivalence(
        rand100, rebuilt.netlist, key_right=dict(rebuilt.key), seed_or_rng=1
    )
    assert res.equal


def test_empty_genotype_rejected(rand100):
    with pytest.raises(LockingError, match="at least one gene"):
        lock_with_genes(rand100, [])


def test_wire_reuse_rejected(rand100):
    locked = DMuxLocking("shared").lock(rand100, 4, seed_or_rng=5)
    genes = genes_from_locked(locked)
    with pytest.raises(LockingError, match="reuses wire"):
        lock_with_genes(rand100, genes + [genes[0]])


def test_inapplicable_gene_rejected(rand100):
    gene = MuxGene("ghost_a", "ghost_b", "ghost_c", "ghost_d", 0)
    with pytest.raises(LockingError, match="gene 0 inapplicable"):
        lock_with_genes(rand100, [gene])


def test_genes_from_locked_rejects_multi_consumer_net_cuts(rll_locked):
    """RLL cuts whole nets; a multi-consumer cut has no wire-level gene.
    The error names the failing insertion index and the scheme."""
    with pytest.raises(LockingError, match=r"insertion \d+ of scheme 'rll'"):
        genes_from_locked(rll_locked)


def test_genes_from_locked_rejects_two_key(rand100):
    locked = DMuxLocking("two_key").lock(rand100, 4, seed_or_rng=5)
    with pytest.raises(
        LockingError,
        match=r"insertion 0 of scheme 'dmux-two_key'.*two_key",
    ):
        genes_from_locked(locked)
