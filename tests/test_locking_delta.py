"""Delta re-locking: CowNetlist views must be indistinguishable from
scratch-built lock_with_genes output — structure, key, scheme,
insertions, fanouts and topological order all identical."""

import numpy as np
import pytest

from repro.circuits import load_circuit
from repro.errors import LockingError
from repro.locking import DeltaRelocker, DMuxLocking, MuxGene, lock_with_genes
from repro.locking.genome_lock import genes_from_locked
from repro.ec.genotype import random_genotype
from repro.netlist import validate_netlist
from repro.netlist.cow import CowNetlist
from repro.registry import PRIMITIVES


def _assert_same_lock(delta, scratch):
    assert delta.netlist.structurally_equal(scratch.netlist)
    assert delta.netlist.name == scratch.netlist.name
    assert delta.key.names == scratch.key.names
    assert delta.key.bits == scratch.key.bits
    assert delta.scheme == scratch.scheme
    assert delta.insertions == scratch.insertions
    assert delta.netlist.topological_order() == scratch.netlist.topological_order()
    assert delta.netlist.fanouts() == scratch.netlist.fanouts()


def test_delta_matches_scratch_dmux_genes(rand100):
    locked = DMuxLocking("shared").lock(rand100, 8, seed_or_rng=13)
    genes = genes_from_locked(locked)
    relocker = DeltaRelocker(rand100)
    delta = relocker.lock(genes)
    scratch = lock_with_genes(rand100, genes)
    validate_netlist(delta.netlist)
    _assert_same_lock(delta, scratch)


@pytest.mark.parametrize("kind", sorted(PRIMITIVES.available()))
def test_delta_matches_scratch_every_primitive(rand100, kind):
    rng = np.random.default_rng(17)
    prim = PRIMITIVES.create(kind)
    genes = [prim.sample(rand100, rng) for _ in range(6)]
    relocker = DeltaRelocker(rand100)
    _assert_same_lock(relocker.lock(genes), lock_with_genes(rand100, genes))


@pytest.mark.parametrize("seed", [0, 5, 21])
def test_delta_matches_scratch_mixed_alphabet(seed):
    base = load_circuit("rand_150_5")
    rng = np.random.default_rng(seed)
    genotype = random_genotype(
        base, 12, rng, alphabet=tuple(sorted(PRIMITIVES.available()))
    )
    relocker = DeltaRelocker(base)
    _assert_same_lock(relocker.lock(genotype), lock_with_genes(base, genotype))


def test_relocker_is_reusable_and_base_untouched(rand100):
    before_gates = dict(rand100.gates)
    before_fanouts = {k: list(v) for k, v in rand100.fanouts().items()}
    relocker = DeltaRelocker(rand100)
    rng = np.random.default_rng(3)
    for _ in range(4):
        relocker.lock(random_genotype(rand100, 4, rng))
    assert dict(rand100.gates) == before_gates
    assert {k: list(v) for k, v in rand100.fanouts().items()} == before_fanouts


def test_delta_error_messages_match_scratch(rand100):
    relocker = DeltaRelocker(rand100)
    with pytest.raises(LockingError, match="at least one gene"):
        relocker.lock([])
    locked = DMuxLocking("shared").lock(rand100, 4, seed_or_rng=5)
    genes = genes_from_locked(locked)
    with pytest.raises(LockingError, match="reuses wire"):
        relocker.lock(genes + [genes[0]])
    ghost = MuxGene("ghost_a", "ghost_b", "ghost_c", "ghost_d", 0)
    with pytest.raises(LockingError, match="gene 0 inapplicable"):
        relocker.lock([ghost])


def test_cow_view_mutations_do_not_leak_to_base(rand100):
    from repro.netlist import GateType

    view = CowNetlist.from_base(rand100)
    sig = rand100.outputs[0]
    consumers_before = list(rand100.fanouts().get(sig, []))
    view.add_gate("cow_extra", GateType.BUF, [sig])
    assert rand100.fanouts().get(sig, []) == consumers_before
    assert "cow_extra" not in rand100.gates
    assert ("cow_extra", 0) in view.fanouts()[sig]
