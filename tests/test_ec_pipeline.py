"""Attack-backed fitness functions and the AutoLock pipeline."""

import pytest

from repro.circuits import load_circuit
from repro.ec import AutoLock, AutoLockConfig
from repro.ec.fitness import FitnessCache, MultiObjectiveFitness, MuxLinkFitness
from repro.ec.genotype import random_genotype
from repro.netlist import validate_netlist
from repro.sim import check_equivalence


@pytest.fixture(scope="module")
def circuit():
    return load_circuit("rand_150_5")


def test_muxlink_fitness_deterministic_and_cached(circuit):
    cache = FitnessCache()
    fitness = MuxLinkFitness(
        circuit, predictor="bayes", attack_seed=1, cache=cache
    )
    genes = random_genotype(circuit, 6, seed_or_rng=1)
    first = fitness(genes)
    second = fitness(genes)
    assert first == second
    assert 0.0 <= first <= 1.0
    assert cache.hits == 1 and cache.misses == 1
    assert fitness.evaluations == 1, "second call must come from the cache"


def test_muxlink_fitness_distinguishes_genotypes(circuit):
    fitness = MuxLinkFitness(circuit, predictor="bayes", attack_seed=2)
    values = {
        fitness(random_genotype(circuit, 6, seed_or_rng=s)) for s in range(6)
    }
    assert len(values) > 1, "fitness landscape must not be flat"


def test_multiobjective_fitness_vector(circuit):
    fitness = MultiObjectiveFitness(circuit, predictor="bayes", attack_seed=3)
    genes = random_genotype(circuit, 6, seed_or_rng=2)
    objectives = fitness(genes)
    assert len(objectives) == fitness.n_objectives == 3
    accuracy, depth, anti_corruption = objectives
    assert 0.0 <= accuracy <= 1.0
    assert depth >= 0.0
    assert 0.0 <= anti_corruption <= 1.0
    # Objective subsets and custom orders are honoured.
    custom = MultiObjectiveFitness(
        circuit, predictor="bayes",
        objectives=("area", "muxlink"), attack_seed=3,
    )
    area, acc2 = custom(genes)
    assert area > 0.0, "adding MUXes must cost area"
    assert 0.0 <= acc2 <= 1.0
    with pytest.raises(ValueError, match="unknown objectives"):
        MultiObjectiveFitness(circuit, objectives=("bogus",))
    with pytest.raises(ValueError, match="at least one"):
        MultiObjectiveFitness(circuit, objectives=())


def test_multiobjective_depth_and_corruption_vary(circuit):
    """The E8 trade-off needs objectives that differ across genotypes."""
    fitness = MultiObjectiveFitness(
        circuit, predictor="bayes", objectives=("depth", "corruption"),
        attack_seed=4,
    )
    vectors = {fitness(random_genotype(circuit, 6, seed_or_rng=s)) for s in range(8)}
    depths = {v[0] for v in vectors}
    corr = {v[1] for v in vectors}
    assert len(depths) > 1, "depth objective is flat across genotypes"
    assert len(corr) > 1, "corruption objective is flat across genotypes"


def test_autolock_pipeline_small(circuit):
    config = AutoLockConfig(
        key_length=8,
        population_size=4,
        generations=3,
        fitness_predictor="bayes",
        report_predictor="bayes",
        report_ensemble=1,
        seed=11,
    )
    result = AutoLock(config).run(circuit)

    # Locked design is valid and functionally correct under its key.
    validate_netlist(result.locked.netlist)
    assert result.locked.key_length == 8
    res = check_equivalence(
        circuit, result.locked.netlist, key_right=dict(result.locked.key),
        seed_or_rng=1,
    )
    assert res.equal

    # Report accounting.
    assert len(result.baseline_population_accuracies) == 4
    assert result.fitness_evaluations > 0
    assert result.accuracy_drop_pp == pytest.approx(
        (result.baseline_accuracy - result.evolved_accuracy) * 100.0
    )
    assert "AutoLock" in result.summary()
    assert len(result.ga.history) == 3


def test_autolock_improves_fitness(circuit):
    """The GA champion's fitness must not be worse than generation 0's."""
    config = AutoLockConfig(
        key_length=8,
        population_size=5,
        generations=4,
        fitness_predictor="bayes",
        report_predictor="bayes",
        seed=13,
    )
    result = AutoLock(config).run(circuit)
    assert result.ga.best_fitness <= result.ga.initial_best + 1e-12
