"""ISCAS .bench parsing/writing, including property-based round-trips."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.circuits import load_circuit
from repro.errors import BenchParseError
from repro.netlist import parse_bench, write_bench
from repro.netlist.bench import parse_bench_file, write_bench_file


def test_parse_c17(c17):
    assert c17.inputs == ["G1", "G2", "G3", "G6", "G7"]
    assert c17.outputs == ["G22", "G23"]
    assert len(c17.gates) == 6
    assert c17.gates["G22"].fanins == ("G10", "G16")


def test_comments_and_blank_lines():
    n = parse_bench(
        """
        # a comment
        INPUT(x)   # trailing comment

        OUTPUT(y)
        y = NOT(x)
        """
    )
    assert n.inputs == ["x"] and n.outputs == ["y"]


def test_forward_references_allowed():
    n = parse_bench(
        """
        INPUT(a)
        OUTPUT(z)
        z = NOT(m)
        m = BUF(a)
        """
    )
    assert n.gates["z"].fanins == ("m",)


def test_keyinput_marker_and_convention():
    n = parse_bench(
        """
        INPUT(a)
        KEYINPUT(k0)
        INPUT(keyinput1)
        OUTPUT(z)
        z = XOR(a, k0)
        """
    )
    assert n.inputs == ["a"]
    assert n.key_inputs == ["k0", "keyinput1"]


def test_gate_aliases():
    n = parse_bench("INPUT(a)\nOUTPUT(z)\nz = BUFF(a)\n")
    assert n.gates["z"].gtype.value == "BUF"


def test_mux_and_const_gates():
    n = parse_bench(
        """
        INPUT(s)
        INPUT(a)
        INPUT(b)
        OUTPUT(z)
        one = CONST1()
        z = MUX(s, a, b)
        OUTPUT(one)
        """
    )
    assert n.gates["z"].gtype.value == "MUX"
    assert n.gates["one"].fanins == ()


@pytest.mark.parametrize(
    "text, match",
    [
        ("INPUT(a)\nz = DFF(a)\nOUTPUT(z)", "sequential"),
        ("INPUT(a)\nz = FROB(a)\nOUTPUT(z)", "unknown gate type"),
        ("INPUT(a)\nOUTPUT(z)\nz = NOT(ghost)", "undefined"),
        ("INPUT(a)\nOUTPUT(ghost)\nz = NOT(a)", "no driver"),
        ("INPUT(a)\na = NOT(a)\nOUTPUT(a)", "defined twice"),
        ("INPUT(a)\nwhat is this line", "unrecognised"),
        ("INPUT(a)\nOUTPUT(z)\nz = NOT(a, a)", "requires"),
    ],
)
def test_parse_errors(text, match):
    with pytest.raises(BenchParseError, match=match):
        parse_bench(text)


def test_parse_error_carries_line_number():
    with pytest.raises(BenchParseError) as err:
        parse_bench("INPUT(a)\nbogus line here\n")
    assert err.value.line_no == 2


def test_roundtrip_c17(c17):
    again = parse_bench(write_bench(c17), "c17")
    assert c17.structurally_equal(again)


def test_roundtrip_with_key_inputs(dmux_locked):
    text = write_bench(dmux_locked.netlist)
    again = parse_bench(text, dmux_locked.netlist.name)
    assert dmux_locked.netlist.structurally_equal(again)


def test_key_marker_off_writes_plain_inputs(dmux_locked):
    text = write_bench(dmux_locked.netlist, include_key_marker=False)
    assert "KEYINPUT" not in text
    again = parse_bench(text)
    # The keyinput<N> naming convention still classifies them as keys.
    assert set(again.key_inputs) == set(dmux_locked.netlist.key_inputs)


def test_file_roundtrip(tmp_path, c17):
    path = tmp_path / "c17.bench"
    write_bench_file(c17, path)
    again = parse_bench_file(path)
    assert again.name == "c17"
    assert c17.structurally_equal(again)


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=10, max_value=80), st.integers(min_value=0, max_value=10**6))
def test_roundtrip_random_circuits(n_gates, seed):
    """write -> parse is the identity on arbitrary generated circuits."""
    circuit = load_circuit(f"rand_{n_gates}_{seed}")
    again = parse_bench(write_bench(circuit), circuit.name)
    assert circuit.structurally_equal(again)
