"""GA and NSGA-II engines on cheap synthetic fitness functions.

Using attack-free fitness keeps these tests fast while still exercising
the full evolutionary machinery (selection, crossover, mutation, repair,
elitism, early stopping, Pareto ranking).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ec.fitness import FitnessCache
from repro.ec.ga import GaConfig, GeneticAlgorithm
from repro.ec.genotype import genotype_is_valid
from repro.ec.nsga2 import (
    Nsga2,
    Nsga2Config,
    crowding_distance,
    dominates,
    fast_non_dominated_sort,
)
from repro.errors import EvolutionError


def ones_fitness(genes):
    """Minimised by all key bits = 0."""
    return sum(g.k for g in genes) / len(genes)


# ------------------------------------------------------------------- GA
def test_ga_config_validation():
    with pytest.raises(EvolutionError):
        GaConfig(population_size=1)
    with pytest.raises(EvolutionError):
        GaConfig(population_size=4, elitism=4)
    with pytest.raises(EvolutionError):
        GaConfig(selection="bogus")
    with pytest.raises(EvolutionError):
        GaConfig(crossover="bogus")
    with pytest.raises(EvolutionError):
        GaConfig(mutation="bogus")
    with pytest.raises(EvolutionError):
        GaConfig(crossover_rate=1.5)


def test_ga_minimises_key_bits(rand100):
    config = GaConfig(
        key_length=10,
        population_size=10,
        generations=12,
        mutation="key_only",
        seed=1,
    )
    result = GeneticAlgorithm(config).run(rand100, ones_fitness)
    assert result.best_fitness <= 0.1, "GA must drive key bits toward zero"
    assert result.best_fitness <= result.initial_best
    assert len(result.history) <= 12
    assert result.evaluations > 0
    assert genotype_is_valid(rand100, result.best_genotype)


def test_ga_history_monotone_best(rand100):
    config = GaConfig(key_length=8, population_size=8, generations=8,
                      mutation="key_only", elitism=2, seed=2)
    result = GeneticAlgorithm(config).run(rand100, ones_fitness)
    bests = [s.best for s in result.history]
    assert all(b2 <= b1 + 1e-12 for b1, b2 in zip(bests, bests[1:])), (
        "elitism must make best fitness non-increasing"
    )


def test_ga_early_stop_on_target(rand100):
    config = GaConfig(key_length=6, population_size=8, generations=50,
                      mutation="key_only", target_fitness=0.0, seed=3)
    result = GeneticAlgorithm(config).run(rand100, ones_fitness)
    assert result.best_fitness == 0.0
    assert len(result.history) < 50


def test_ga_patience_stop(rand100):
    constant = lambda genes: 1.0
    config = GaConfig(key_length=4, population_size=6, generations=60,
                      patience=3, seed=4)
    result = GeneticAlgorithm(config).run(rand100, constant)
    assert result.stopped_early
    assert len(result.history) <= 6


def test_ga_initial_population_respected(rand100):
    from repro.ec.genotype import random_genotype

    initial = [random_genotype(rand100, 5, seed_or_rng=s) for s in range(4)]
    config = GaConfig(key_length=5, population_size=6, generations=2, seed=5)
    result = GeneticAlgorithm(config).run(
        rand100, ones_fitness, initial_population=initial
    )
    assert result.evaluations == 12


def test_ga_initial_population_length_check(rand100):
    from repro.ec.genotype import random_genotype

    config = GaConfig(key_length=5, population_size=4, generations=1, seed=0)
    bad = [random_genotype(rand100, 3, seed_or_rng=1)]
    with pytest.raises(EvolutionError, match="genes"):
        GeneticAlgorithm(config).run(rand100, ones_fitness, initial_population=bad)


def test_ga_hall_of_fame_unique_and_sorted(rand100):
    config = GaConfig(key_length=6, population_size=8, generations=6,
                      mutation="key_only", seed=6)
    result = GeneticAlgorithm(config).run(rand100, ones_fitness)
    fits = [f for f, _ in result.hall_of_fame]
    assert fits == sorted(fits)
    from repro.ec.genotype import genotype_key

    keys = [genotype_key(g) for _, g in result.hall_of_fame]
    assert len(keys) == len(set(keys))


def test_fitness_cache():
    cache = FitnessCache()
    assert cache.get(("a",)) is None
    cache.put(("a",), 0.5)
    assert cache.get(("a",)) == 0.5
    assert cache.hits == 1 and cache.misses == 1


# ----------------------------------------------------------------- NSGA-II
def test_dominates():
    assert dominates((0.1, 0.2), (0.2, 0.3))
    assert dominates((0.1, 0.3), (0.1, 0.4))
    assert not dominates((0.1, 0.4), (0.2, 0.3))
    assert not dominates((0.1, 0.2), (0.1, 0.2))
    with pytest.raises(EvolutionError):
        dominates((0.1,), (0.1, 0.2))


def test_fast_non_dominated_sort_matches_bruteforce():
    objs = [(1, 5), (2, 2), (5, 1), (3, 3), (4, 4), (2, 6)]
    fronts = fast_non_dominated_sort(objs)
    assert sorted(fronts[0]) == [0, 1, 2]
    assert sorted(fronts[1]) == [3, 5]
    assert fronts[2] == [4]


@settings(max_examples=25, deadline=None)
@given(st.lists(
    st.tuples(st.integers(0, 10), st.integers(0, 10)), min_size=1, max_size=20
))
def test_front_zero_is_exactly_nondominated(objs):
    fronts = fast_non_dominated_sort(objs)
    nondominated = {
        i for i in range(len(objs))
        if not any(dominates(objs[j], objs[i]) for j in range(len(objs)))
    }
    assert set(fronts[0]) == nondominated
    assert sorted(i for f in fronts for i in f) == list(range(len(objs)))


def test_crowding_distance_boundaries():
    objs = [(0.0, 1.0), (0.5, 0.5), (1.0, 0.0), (0.6, 0.6)]
    front = [0, 1, 2]
    crowd = crowding_distance(objs, front)
    assert crowd[0] == float("inf") and crowd[2] == float("inf")
    assert 0 < crowd[1] < float("inf")
    assert crowding_distance(objs, [0, 1]) == {0: float("inf"), 1: float("inf")}


def test_nsga2_config_validation():
    with pytest.raises(EvolutionError):
        Nsga2Config(population_size=2)
    with pytest.raises(EvolutionError):
        Nsga2Config(crossover="bogus")


def test_nsga2_front_tradeoff(rand100):
    """Two antagonistic objectives -> front must contain both extremes."""

    def two_objectives(genes):
        ones = sum(g.k for g in genes) / len(genes)
        return (ones, 1.0 - ones)

    config = Nsga2Config(key_length=8, population_size=12, generations=6, seed=7)
    result = Nsga2(config).run(rand100, two_objectives)
    assert result.front_genotypes, "front cannot be empty"
    # Front must be mutually non-dominated.
    for i, a in enumerate(result.front_objectives):
        for j, b in enumerate(result.front_objectives):
            if i != j:
                assert not dominates(a, b)
    firsts = [o[0] for o in result.front_objectives]
    assert min(firsts) <= 0.25 and max(firsts) >= 0.75, (
        f"front lacks spread: {sorted(firsts)}"
    )
    assert result.evaluations > 0
    assert len(result.history) == 6
