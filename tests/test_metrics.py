"""Security scoring, overhead proxies, corruption reports."""

import pytest

from repro.errors import AttackError
from repro.locking import DMuxLocking, RandomLogicLocking
from repro.metrics import (
    KpaScore,
    corruption_report,
    overhead_report,
    score_guesses,
)
from repro.metrics.overhead import area_estimate, switching_activity


# --------------------------------------------------------------- security
def test_kpa_score_accuracy_convention():
    score = KpaScore(n_bits=10, n_decided=8, n_correct=6)
    # 6 correct + 2 undecided * 0.5 = 7 -> 0.7
    assert score.accuracy == pytest.approx(0.7)
    assert score.precision == pytest.approx(0.75)
    assert score.coverage == pytest.approx(0.8)


def test_kpa_degenerate_cases():
    empty = KpaScore(0, 0, 0)
    assert empty.accuracy == 0.5
    assert empty.precision == 1.0
    assert empty.coverage == 0.0
    undecided = KpaScore(4, 0, 0)
    assert undecided.accuracy == 0.5
    assert "bits=4" in undecided.as_row()


def test_score_guesses():
    truth = {"k0": 1, "k1": 0, "k2": 1}
    guesses = {"k0": 1, "k1": 1, "k2": None}
    score = score_guesses(guesses, truth)
    assert score.n_bits == 3 and score.n_decided == 2 and score.n_correct == 1
    assert score.accuracy == pytest.approx((1 + 0.5) / 3)


def test_score_guesses_validation():
    with pytest.raises(AttackError, match="missing"):
        score_guesses({}, {"k0": 1})
    with pytest.raises(AttackError, match="unknown"):
        score_guesses({"k0": 1, "kx": 0}, {"k0": 1})
    with pytest.raises(AttackError, match="0/1/None"):
        score_guesses({"k0": 7}, {"k0": 1})


# --------------------------------------------------------------- overhead
def test_area_estimate_positive(c17):
    assert area_estimate(c17) == pytest.approx(6.0)  # 6 NAND2 = 6 units


def test_switching_activity_range(c17):
    act = switching_activity(c17, n_patterns=512, seed_or_rng=0)
    assert 0.0 <= act <= 0.5


def test_overhead_report(rand100, dmux_locked):
    report = overhead_report(
        rand100,
        dmux_locked.netlist,
        dmux_locked.key,
        scheme=dmux_locked.scheme,
        n_patterns=256,
        seed_or_rng=0,
    )
    assert report.gate_overhead > 0
    assert report.area_overhead > 0
    assert report.key_length == 8
    assert "dmux" in report.as_row()


def test_overhead_ordering(rand100):
    """Shared D-MUX (2 MUX/bit) must cost more area than RLL (1 XOR/bit)."""
    rll = RandomLogicLocking().lock(rand100, 8, seed_or_rng=3)
    dmux = DMuxLocking("shared").lock(rand100, 8, seed_or_rng=3)
    rep_rll = overhead_report(rand100, rll.netlist, rll.key, "rll", 256, 0)
    rep_dmux = overhead_report(rand100, dmux.netlist, dmux.key, "dmux", 256, 0)
    assert rep_dmux.area_overhead > rep_rll.area_overhead


# -------------------------------------------------------------- corruption
def test_corruption_report(dmux_locked):
    report = corruption_report(
        dmux_locked, n_wrong_keys=4, n_patterns=256, seed_or_rng=0
    )
    assert report.correct_key_error == 0.0
    assert report.mean_random_wrong_error > 0.0
    assert report.worst_single_flip_error >= report.mean_single_flip_error
    assert "dmux" in report.as_row()
