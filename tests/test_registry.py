"""Plugin registries: registration, lookup, creation, error reporting."""

import pytest

from repro import registry
from repro.errors import RegistryError
from repro.registry import (
    Registry,
    available_attacks,
    available_engines,
    available_metrics,
    available_predictors,
    available_schemes,
    create_attack,
    create_engine,
    create_predictor,
    create_scheme,
)


# ------------------------------------------------------------- built-ins
def test_builtin_schemes_registered():
    assert available_schemes() == ["dmux", "rll"]


def test_builtin_attacks_registered():
    assert available_attacks() == [
        "muxlink", "random", "saam", "sat", "scope", "snapshot"
    ]


def test_builtin_predictors_registered():
    assert available_predictors() == ["bayes", "gnn", "mlp"]


def test_builtin_engines_registered():
    assert available_engines() == [
        "autolock", "ga", "hill_climber", "nsga2", "random_search",
        "simulated_annealing",
    ]


def test_builtin_metrics_registered():
    assert available_metrics() == [
        "corruption", "equivalence", "overhead", "stats",
    ]


def test_create_scheme_with_params():
    scheme = create_scheme("dmux", strategy="two_key")
    assert scheme.strategy == "two_key"
    assert create_scheme("rll").name == "rll"


def test_create_attack_with_params():
    attack = create_attack("muxlink", predictor="bayes", ensemble=2)
    assert attack.predictor_name == "bayes"
    assert attack.ensemble == 2


def test_create_predictor():
    assert create_predictor("bayes").name == "bayes"


def test_create_engine_adapters_carry_names():
    for name in available_engines():
        assert create_engine(name).name == name


# --------------------------------------------------------------- errors
def test_unknown_name_error_lists_available():
    with pytest.raises(RegistryError, match="muxlink, random, saam, sat"):
        create_attack("does_not_exist")


def test_bad_constructor_params_wrapped():
    with pytest.raises(RegistryError, match="cannot construct.*rll"):
        create_scheme("rll", strategy="shared")


def test_registry_contains_and_len():
    assert "muxlink" in registry.ATTACKS
    assert "nope" not in registry.ATTACKS
    assert len(registry.ATTACKS) == len(available_attacks())
    assert list(registry.ATTACKS) == available_attacks()


# --------------------------------------------------- custom registration
def test_decorator_registration_and_replace():
    reg = Registry("widget")

    @reg.register("spinny")
    class Spinny:
        def __init__(self, speed=1):
            self.speed = speed

    assert reg.available() == ["spinny"]
    assert reg.create("spinny", speed=3).speed == 3

    with pytest.raises(RegistryError, match="already registered"):
        reg.register("spinny", Spinny)

    class Spinny2(Spinny):
        pass

    reg.register("spinny", Spinny2, replace=True)
    assert isinstance(reg.create("spinny"), Spinny2)


def test_direct_factory_registration():
    reg = Registry("thing")
    reg.register("fixed", lambda: 42)
    assert reg.create("fixed") == 42


def test_lazy_provider_import():
    reg = Registry("ghost", providers=("repro.attacks",))
    # Providers resolve on first access, not at construction.
    assert reg._entries == {}
    assert reg.available() == []  # providers register elsewhere, not here


def test_plugin_attack_usable_from_cli_dispatch(monkeypatch):
    """A freshly registered attack is creatable with no dispatch edits."""
    from repro.attacks.base import Attack

    class NullAttack(Attack):
        name = "null"

        def run(self, locked, seed_or_rng=None):  # pragma: no cover
            raise NotImplementedError

    registry.ATTACKS.register("null_test_attack", NullAttack)
    try:
        assert isinstance(create_attack("null_test_attack"), NullAttack)
    finally:
        registry.ATTACKS._entries.pop("null_test_attack", None)
