"""Design serialisation and the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.errors import LockingError
from repro.io import load_locked_design, save_locked_design
from repro.locking import DMuxLocking, RandomLogicLocking
from repro.sim import check_equivalence


# --------------------------------------------------------------------- io
@pytest.mark.parametrize("scheme_factory", [
    lambda: RandomLogicLocking(),
    lambda: DMuxLocking("shared"),
    lambda: DMuxLocking("two_key"),
], ids=["rll", "dmux-shared", "dmux-two_key"])
def test_save_load_roundtrip(tmp_path, rand100, scheme_factory):
    locked = scheme_factory().lock(rand100, 8, seed_or_rng=3)
    sidecar = save_locked_design(locked, tmp_path)
    assert sidecar.exists()
    again = load_locked_design(sidecar)
    assert again.netlist.structurally_equal(locked.netlist)
    assert again.original.structurally_equal(locked.original)
    assert again.key == locked.key
    assert again.scheme == locked.scheme
    assert len(again.insertions) == len(locked.insertions)
    assert again.insertions == locked.insertions
    res = check_equivalence(
        again.original, again.netlist, key_right=dict(again.key), seed_or_rng=0
    )
    assert res.equal


def test_sidecar_is_readable_json(tmp_path, dmux_locked):
    sidecar = save_locked_design(dmux_locked, tmp_path)
    data = json.loads(sidecar.read_text())
    assert data["scheme"] == "dmux-shared"
    assert len(data["key_bits"]) == 8
    assert all(rec["type"] == "mux_pair" for rec in data["insertions"])


def test_load_rejects_unknown_insertion(tmp_path, dmux_locked):
    sidecar = save_locked_design(dmux_locked, tmp_path)
    data = json.loads(sidecar.read_text())
    data["insertions"][0]["type"] = "alien"
    sidecar.write_text(json.dumps(data))
    with pytest.raises(LockingError, match="unknown insertion"):
        load_locked_design(sidecar)


# -------------------------------------------------------------------- cli
def test_parser_requires_command():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args([])


def test_cli_info(capsys):
    assert main(["info", "c17"]) == 0
    out = capsys.readouterr().out
    assert "c17" in out and "gates=6" in out


def test_cli_info_all(capsys):
    assert main(["info"]) == 0
    out = capsys.readouterr().out
    assert "c432_syn" in out and "c7552_syn" in out


def test_cli_lock_and_attack(tmp_path, capsys):
    assert main([
        "lock", "rand_80_3", "--scheme", "dmux", "--key-length", "6",
        "--seed", "5", "--output", str(tmp_path),
    ]) == 0
    out = capsys.readouterr().out
    assert "saved:" in out
    sidecar = next(tmp_path.glob("*.lock.json"))

    assert main([
        "attack", str(sidecar), "--attack", "muxlink",
        "--predictor", "bayes", "--seed", "1",
    ]) == 0
    out = capsys.readouterr().out
    assert "muxlink-bayes" in out

    assert main(["attack", str(sidecar), "--attack", "scope"]) == 0
    assert main(["attack", str(sidecar), "--attack", "random"]) == 0
    assert main(["attack", str(sidecar), "--attack", "sat"]) == 0
    out = capsys.readouterr().out
    assert "n_dips" in out


def test_cli_attack_unknown_name_exits_nonzero(tmp_path, capsys):
    """No silent RandomGuess fallback: unknown attacks fail loudly."""
    assert main([
        "lock", "rand_80_3", "--scheme", "dmux", "--key-length", "6",
        "--seed", "5", "--output", str(tmp_path),
    ]) == 0
    capsys.readouterr()
    sidecar = next(tmp_path.glob("*.lock.json"))

    assert main(["attack", str(sidecar), "--attack", "mystery"]) == 2
    err = capsys.readouterr().err
    assert "unknown attack 'mystery'" in err
    assert "muxlink" in err and "random" in err and "sat" in err


def test_cli_evolve_workers_zero_means_serial(capsys):
    """Historical contract: --workers < 2 (incl. 0) runs serially."""
    assert main([
        "evolve", "rand_100_9", "--key-length", "4", "--population", "4",
        "--generations", "2", "--predictor", "bayes", "--seed", "2",
        "--workers", "0",
    ]) == 0
    assert "AutoLock on rand_100_9" in capsys.readouterr().out


def test_cli_lock_unknown_scheme_exits_nonzero(capsys):
    assert main(["lock", "rand_80_3", "--scheme", "alien"]) == 2
    err = capsys.readouterr().err
    assert "unknown locking scheme 'alien'" in err
    assert "dmux" in err and "rll" in err


def test_cli_evolve(tmp_path, capsys):
    assert main([
        "evolve", "rand_100_9", "--key-length", "4", "--population", "4",
        "--generations", "2", "--predictor", "bayes", "--seed", "2",
        "--output", str(tmp_path),
    ]) == 0
    out = capsys.readouterr().out
    assert "AutoLock on rand_100_9" in out
    assert "gen   0" in out or "gen 0" in out.replace("  ", " ")
    assert list(tmp_path.glob("*.lock.json"))


def test_cli_alphabet_unknown_primitive_exits_two(capsys):
    """Unknown --alphabet names fail loudly, listing the registry —
    the same contract as unknown --attack / --scheme."""
    assert main([
        "evolve", "rand_100_9", "--key-length", "4", "--population", "4",
        "--generations", "1", "--predictor", "bayes",
        "--alphabet", "mux,mystery",
    ]) == 2
    err = capsys.readouterr().err
    assert "unknown locking primitive 'mystery'" in err
    assert "mux" in err and "xor" in err and "and_or" in err


def test_cli_alphabet_empty_exits_two(capsys):
    assert main([
        "evolve", "rand_100_9", "--key-length", "4", "--population", "4",
        "--generations", "1", "--predictor", "bayes", "--alphabet", ",",
    ]) == 2
    assert "at least one primitive" in capsys.readouterr().err


def test_cli_run_alphabet_override(tmp_path, capsys):
    """--alphabet on `autolock run` overrides the spec and the record
    names per-gene primitive kinds."""
    import json

    spec = {
        "circuit": "rand_100_9",
        "key_length": 6,
        "engine": "ga",
        "engine_params": {"population_size": 4, "generations": 2},
        "attack": "muxlink",
        "attack_params": {"predictor": "bayes"},
        "seed": 5,
    }
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(spec))
    assert main([
        "run", str(path), "--alphabet", "mux,xor",
        "--out", str(tmp_path / "artifacts"),
    ]) == 0
    out = capsys.readouterr().out
    assert "alphabet=mux,xor" in out
    record = json.loads(
        (tmp_path / "artifacts" / "results.jsonl").read_text().splitlines()[0]
    )
    assert record["spec"]["alphabet"] == ["mux", "xor"]
    kinds = {g["kind"] for g in record["engine"]["best_genotype"]}
    assert kinds <= {"mux", "xor"} and kinds

    assert main(["run", str(path), "--alphabet", "nope"]) == 2
    assert "unknown locking primitive 'nope'" in capsys.readouterr().err


def test_cli_sweep_alphabet_flag_conflicts_with_axis(tmp_path, capsys):
    """--alphabet on a sweep that already sweeps an alphabet axis is
    refused: the axis would silently override the flag."""
    import json

    sweep = {
        "name": "clash",
        "base": {
            "circuit": "rand_100_9", "key_length": 4, "engine": "ga",
            "engine_params": {"population_size": 4, "generations": 1},
            "attack": "muxlink", "attack_params": {"predictor": "bayes"},
            "seed": 1,
        },
        "axes": {"alphabet": [["mux"], ["mux", "xor"]]},
    }
    path = tmp_path / "sweep.json"
    path.write_text(json.dumps(sweep))
    assert main(["sweep", str(path), "--alphabet", "mux"]) == 2
    assert "already sweeps an 'alphabet' axis" in capsys.readouterr().err


def test_cli_sweep_alphabet_flag_conflicts_with_merge_axis(tmp_path, capsys):
    """A merge axis whose partial specs set alphabet conflicts too."""
    import json

    sweep = {
        "name": "clash_merge",
        "base": {
            "circuit": "rand_100_9", "key_length": 4, "engine": "ga",
            "engine_params": {"population_size": 4, "generations": 1},
            "attack": "muxlink", "attack_params": {"predictor": "bayes"},
            "seed": 1,
        },
        "axes": {
            "*variant": [
                {"alphabet": ["mux"]},
                {"alphabet": ["mux", "xor"]},
            ]
        },
    }
    path = tmp_path / "sweep.json"
    path.write_text(json.dumps(sweep))
    assert main(["sweep", str(path), "--alphabet", "mux"]) == 2
    assert "already sweeps an 'alphabet' axis" in capsys.readouterr().err
