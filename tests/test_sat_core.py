"""CNF container, DIMACS I/O, DPLL reference solver."""

import pytest

from repro.errors import CnfError
from repro.sat import Cnf, DpllSolver, parse_dimacs, write_dimacs
from repro.sat.dimacs import parse_dimacs_file, write_dimacs_file


# --------------------------------------------------------------------- Cnf
def test_new_vars_and_names():
    cnf = Cnf()
    a = cnf.new_var("a")
    b, c = cnf.new_vars(2, prefix="x")
    assert (a, b, c) == (1, 2, 3)
    assert cnf.var_names == {1: "a", 2: "x0", 3: "x1"}


def test_add_clause_validation():
    cnf = Cnf()
    a = cnf.new_var()
    with pytest.raises(CnfError):
        cnf.add_clause([0])
    with pytest.raises(CnfError):
        cnf.add_clause([a + 5])
    with pytest.raises(CnfError):
        cnf.add_clause([])


def test_tautology_dropped_and_duplicates_collapsed():
    cnf = Cnf()
    a, b = cnf.new_vars(2)
    cnf.add_clause([a, -a])
    assert cnf.n_clauses == 0
    cnf.add_clause([a, a, b])
    assert cnf.clauses == [(a, b)]


def test_evaluate():
    cnf = Cnf()
    a, b = cnf.new_vars(2)
    cnf.add_clauses([[a], [-a, b]])
    assert cnf.evaluate({1: True, 2: True})
    assert not cnf.evaluate({1: True, 2: False})
    with pytest.raises(CnfError):
        cnf.evaluate({1: True})


def test_copy_independent():
    cnf = Cnf()
    a = cnf.new_var()
    cnf.add_clause([a])
    dup = cnf.copy()
    dup.add_clause([-a])
    assert cnf.n_clauses == 1 and dup.n_clauses == 2


# ------------------------------------------------------------------ DIMACS
def test_dimacs_roundtrip():
    cnf = Cnf()
    a, b, c = cnf.new_vars(3)
    cnf.add_clauses([[a, -b], [b, c], [-a, -c]])
    text = write_dimacs(cnf, comments=["hello"])
    assert text.startswith("c hello\np cnf 3 3\n")
    again = parse_dimacs(text)
    assert again.n_vars == 3
    assert again.clauses == cnf.clauses


def test_dimacs_multiline_clause():
    cnf = parse_dimacs("p cnf 3 1\n1 2\n3 0\n")
    assert cnf.clauses == [(1, 2, 3)]


@pytest.mark.parametrize(
    "text",
    ["p cnf x 1\n1 0", "1 0\np cnf 1 1", "p cnf 1 1\n1"],
)
def test_dimacs_errors(text):
    with pytest.raises(CnfError):
        parse_dimacs(text)


def test_dimacs_files(tmp_path):
    cnf = Cnf()
    a = cnf.new_var()
    cnf.add_clause([a])
    path = tmp_path / "f.cnf"
    write_dimacs_file(cnf, path)
    assert parse_dimacs_file(path).clauses == [(a,)]


# -------------------------------------------------------------------- DPLL
def test_dpll_sat():
    cnf = Cnf()
    a, b = cnf.new_vars(2)
    cnf.add_clauses([[a, b], [-a, b]])
    model = DpllSolver(cnf).solve()
    assert model is not None and model[b]
    assert cnf.evaluate(model)


def test_dpll_unsat():
    cnf = Cnf()
    a = cnf.new_var()
    b = cnf.new_var()
    cnf.add_clauses([[a, b], [a, -b], [-a, b], [-a, -b]])
    assert DpllSolver(cnf).solve() is None


def test_dpll_model_is_total():
    cnf = Cnf()
    cnf.new_vars(4)
    cnf.add_clause([1])
    model = DpllSolver(cnf).solve()
    assert set(model) == {1, 2, 3, 4}
