"""Experiment stores: backends, concurrent writers, and the work queue.

The SQLite store is the shared state behind distributed sweeps, so these
tests hammer exactly what production leans on: cross-process writes with
no lost or corrupted entries, lease-based claiming with expiry/requeue,
and the FitnessCache integration (read-through visibility of sibling
writers, pickling hygiene).
"""

from __future__ import annotations

import json
import multiprocessing
import pickle
import time

import pytest

from repro.ec.fitness import FitnessCache
from repro.errors import StoreError
from repro.registry import STORES
from repro.store import (
    JSONStore,
    SQLiteStore,
    ensure_queue,
    infer_backend,
    open_store,
)

# ------------------------------------------------------------ factory
def test_open_store_infers_backend_from_suffix(tmp_path):
    assert infer_backend("cache.json") == "json"
    assert infer_backend("cache.sqlite") == "sqlite"
    assert infer_backend("cache.db") == "sqlite"
    assert isinstance(open_store(tmp_path / "a.json"), JSONStore)
    assert isinstance(open_store(tmp_path / "a.sqlite"), SQLiteStore)
    # Explicit backend name beats the suffix.
    assert isinstance(open_store(tmp_path / "a.json", "sqlite"), SQLiteStore)


def test_store_registry_lists_backends():
    names = STORES.available()
    assert "json" in names and "sqlite" in names


def test_json_store_has_no_queue(tmp_path):
    with pytest.raises(StoreError, match="work queue"):
        ensure_queue(JSONStore(tmp_path / "a.json"))


# ------------------------------------------------------ kv round trips
@pytest.mark.parametrize("suffix", [".json", ".sqlite"])
def test_kv_round_trip_and_namespacing(tmp_path, suffix):
    store = open_store(tmp_path / f"s{suffix}")
    store.put_many("ns1", {"a": 0.5, "b": [1, 2]})
    store.put_many("ns2", {"a": {"nested": True}})
    assert store.get("ns1", "a") == 0.5
    assert store.get("ns1", "b") == [1, 2]
    assert store.get("ns2", "a") == {"nested": True}
    assert store.get("ns1", "missing") is None
    assert store.load_namespace("ns1") == {"a": 0.5, "b": [1, 2]}
    assert store.namespaces() == ["ns1", "ns2"]
    store.wipe_namespace("ns1")
    assert store.load_namespace("ns1") == {}
    assert store.get("ns2", "a") == {"nested": True}
    status = store.status()
    assert status["entries"] == 1 and "ns2" in status["namespaces"]
    store.close()


def test_json_store_write_is_atomic_and_leaves_no_temp(tmp_path):
    store = JSONStore(tmp_path / "c.json")
    for i in range(5):
        store.put_many("ns", {f"k{i}": i})
    leftovers = [p for p in tmp_path.iterdir() if p.suffix == ".tmp"]
    assert leftovers == [], "temp files must be renamed or cleaned up"
    assert json.loads((tmp_path / "c.json").read_text())["ns"]["k4"] == 4


def test_sqlite_store_pickles_by_path(tmp_path):
    store = SQLiteStore(tmp_path / "s.sqlite")
    store.put_many("ns", {"k": 1.5})
    clone = pickle.loads(pickle.dumps(store))
    assert clone.get("ns", "k") == 1.5
    clone.close()
    store.close()


# --------------------------------------------- concurrent writer hammer
def _hammer(path: str, worker_idx: int, n: int) -> None:
    store = SQLiteStore(path, retries=12)
    for i in range(n):
        store.put_many(
            "fitness|c17", {f"w{worker_idx}-k{i}": worker_idx + i * 0.5}
        )
        store.put_many(
            "experiment",
            {f"w{worker_idx}-e{i}": {"worker": worker_idx, "i": i}},
        )
    store.close()


def test_two_processes_hammering_one_sqlite_store_lose_nothing(tmp_path):
    path = str(tmp_path / "hammer.sqlite")
    n = 60
    procs = [
        multiprocessing.Process(target=_hammer, args=(path, w, n))
        for w in range(2)
    ]
    for p in procs:
        p.start()
    for p in procs:
        p.join()
    assert all(p.exitcode == 0 for p in procs)

    store = SQLiteStore(path)
    fitness = store.load_namespace("fitness|c17")
    experiments = store.load_namespace("experiment")
    assert len(fitness) == 2 * n, "lost fitness entries under contention"
    assert len(experiments) == 2 * n, "lost experiment entries under contention"
    for w in range(2):
        for i in range(n):
            assert fitness[f"w{w}-k{i}"] == w + i * 0.5
            assert experiments[f"w{w}-e{i}"] == {"worker": w, "i": i}
    store.close()


# ------------------------------------------------------------ the queue
def test_claim_is_exclusive_and_ordered(tmp_path):
    store = SQLiteStore(tmp_path / "q.sqlite")
    queue = ensure_queue(store)
    assert queue.enqueue_points("sw", {"p1": {"a": 1}, "p2": {"a": 2}}) == 2
    # Idempotent: re-offering the same points adds nothing.
    assert queue.enqueue_points("sw", {"p1": {"a": 1}, "p2": {"a": 2}}) == 0

    first = queue.claim("sw", "w1", ttl=60)
    second = queue.claim("sw", "w2", ttl=60)
    assert first.fingerprint == "p1" and first.payload == {"a": 1}
    assert second.fingerprint == "p2"
    assert queue.claim("sw", "w3", ttl=60) is None, "nothing left to claim"

    queue.complete("sw", "p1", "w1", fresh_evaluations=3)
    queue.complete("sw", "p2", "w2")
    assert queue.queue_counts("sw") == {"done": 2}
    rows = {p["fingerprint"]: p for p in store.points("sw")}
    assert rows["p1"]["fresh_evaluations"] == 3
    store.close()


def test_lease_expiry_requeues_and_reclaims(tmp_path):
    store = SQLiteStore(tmp_path / "q.sqlite")
    queue = ensure_queue(store)
    queue.enqueue_points("sw", {"p1": {}})
    stale = queue.claim("sw", "w1", ttl=0.05)
    assert stale is not None
    assert queue.claim("sw", "w2", ttl=60) is None, "lease still held"
    time.sleep(0.1)
    assert queue.requeue_expired("sw") == 1
    fresh = queue.claim("sw", "w2", ttl=60)
    assert fresh is not None and fresh.worker_id == "w2"
    assert fresh.attempts == 2, "attempt count survives the requeue"
    store.close()


def test_expired_lease_is_directly_claimable_without_requeue(tmp_path):
    store = SQLiteStore(tmp_path / "q.sqlite")
    queue = ensure_queue(store)
    queue.enqueue_points("sw", {"p1": {}})
    queue.claim("sw", "w1", ttl=0.01)
    time.sleep(0.05)
    taken = queue.claim("sw", "w2", ttl=60)
    assert taken is not None and taken.worker_id == "w2"
    store.close()


def test_heartbeat_extends_only_held_leases(tmp_path):
    store = SQLiteStore(tmp_path / "q.sqlite")
    queue = ensure_queue(store)
    queue.enqueue_points("sw", {"p1": {}})
    point = queue.claim("sw", "w1", ttl=0.2)
    assert queue.heartbeat("sw", point.fingerprint, "w1", ttl=60) is True
    assert queue.heartbeat("sw", point.fingerprint, "w2", ttl=60) is False
    assert queue.requeue_expired("sw") == 0, "renewed lease must not expire"
    store.close()


def test_release_worker_requeues_only_that_workers_claims(tmp_path):
    store = SQLiteStore(tmp_path / "q.sqlite")
    queue = ensure_queue(store)
    queue.enqueue_points("sw", {"p1": {}, "p2": {}})
    queue.claim("sw", "dead", ttl=3600)
    queue.claim("sw", "alive", ttl=3600)
    assert store.release_worker("sw", "dead") == 1
    counts = queue.queue_counts("sw")
    assert counts == {"pending": 1, "claimed": 1}
    store.close()


def test_fail_requeues_until_max_attempts_then_parks(tmp_path):
    store = SQLiteStore(tmp_path / "q.sqlite")
    queue = ensure_queue(store)
    queue.enqueue_points("sw", {"p1": {}})
    point = queue.claim("sw", "w1", ttl=60)
    assert (
        queue.fail("sw", point.fingerprint, "w1", "boom", max_attempts=2)
        == "pending"
    )
    point = queue.claim("sw", "w1", ttl=60)
    assert point.attempts == 2
    assert (
        queue.fail("sw", point.fingerprint, "w1", "boom again", max_attempts=2)
        == "failed"
    )
    assert queue.claim("sw", "w1", ttl=60) is None
    rows = store.points("sw")
    assert rows[0]["status"] == "failed" and "boom again" in rows[0]["error"]
    store.close()


def test_fail_from_a_stolen_lease_cannot_clobber_the_row(tmp_path):
    """A stalled worker whose lease expired and was re-claimed (or even
    completed) by a sibling must not flip the row when it finally errors."""
    store = SQLiteStore(tmp_path / "q.sqlite")
    queue = ensure_queue(store)
    queue.enqueue_points("sw", {"p1": {}})
    queue.claim("sw", "slow", ttl=0.01)
    time.sleep(0.05)
    queue.claim("sw", "fast", ttl=60)  # steals the expired lease
    queue.complete("sw", "p1", "fast")
    # The stalled worker reports its (now irrelevant) failure.
    assert queue.fail("sw", "p1", "slow", "late boom", max_attempts=2) == "done"
    rows = store.points("sw")
    assert rows[0]["status"] == "done" and rows[0]["error"] is None
    # Same protection while the sibling still holds the claim.
    queue.enqueue_points("sw", {"p2": {}})
    queue.claim("sw", "slow", ttl=0.01)
    time.sleep(0.05)
    queue.claim("sw", "fast", ttl=60)
    assert (
        queue.fail("sw", "p2", "slow", "late boom", max_attempts=2) == "claimed"
    )
    rows = {p["fingerprint"]: p for p in store.points("sw")}
    assert rows["p2"]["status"] == "claimed"
    assert rows["p2"]["worker_id"] == "fast"
    store.close()


def test_mark_done_precompletes_points(tmp_path):
    store = SQLiteStore(tmp_path / "q.sqlite")
    queue = ensure_queue(store)
    queue.enqueue_points("sw", {"p1": {}, "p2": {}})
    assert store.mark_done("sw", ["p1"]) == 1
    assert store.mark_done("sw", ["p1"]) == 0, "already done: no flip"
    assert queue.claim("sw", "w1", ttl=60).fingerprint == "p2"
    store.close()


# ------------------------------------- FitnessCache on a sqlite backend
def test_fitness_cache_round_trip_on_sqlite(tmp_path):
    path = tmp_path / "cache.sqlite"
    key = (("a", "b", "c", "d", 1),)
    cache = FitnessCache(path=path, namespace="ns1")
    cache.put(key, 0.5)
    cache.put((("e", "f", "g", "h", 0),), (0.1, 0.2))  # vector fitness

    reloaded = FitnessCache(path=path, namespace="ns1")
    assert reloaded.get(key) == 0.5
    assert reloaded.get((("e", "f", "g", "h", 0),)) == (0.1, 0.2)

    FitnessCache(path=path, namespace="ns1").wipe_disk()
    assert FitnessCache(path=path, namespace="ns1").get(key) is None


def _cache_writer(path: str, key_tuple, value: float) -> None:
    cache = FitnessCache(path=path, namespace="shared")
    cache.put(key_tuple, value)


def test_fitness_cache_read_through_sees_sibling_process_writes(tmp_path):
    path = str(tmp_path / "cache.sqlite")
    key = (("x", "y", "z", "w", 1),)
    reader = FitnessCache(path=path, namespace="shared")
    assert reader.get(key) is None, "cold cache misses"

    process = multiprocessing.Process(
        target=_cache_writer, args=(path, key, 0.75)
    )
    process.start()
    process.join()
    assert process.exitcode == 0

    # The reader's in-memory snapshot predates the write; read-through
    # must find the sibling's entry instead of reporting a miss.
    assert reader.get(key) == 0.75
    assert reader.hits == 1


def test_fitness_cache_on_json_keeps_load_once_semantics(tmp_path):
    path = str(tmp_path / "cache.json")
    key = (("x", "y", "z", "w", 1),)
    reader = FitnessCache(path=path, namespace="shared")
    FitnessCache(path=path, namespace="shared").put(key, 0.75)
    # JSON is a snapshot medium: the pre-existing reader does not see
    # later writers (that is what the sqlite backend is for).
    assert reader.get(key) is None


def test_fitness_cache_flush_failure_keeps_entries_dirty(tmp_path):
    """A failed backend write must not drop entries from future flushes."""

    class FlakyStore(SQLiteStore):
        def __init__(self, path):
            super().__init__(path)
            self.fail_next = False

        def put_many(self, namespace, entries):
            if self.fail_next:
                self.fail_next = False
                raise StoreError("simulated busy store")
            super().put_many(namespace, entries)

    backend = FlakyStore(tmp_path / "cache.sqlite")
    cache = FitnessCache(
        path=tmp_path / "cache.sqlite", namespace="ns", backend=backend
    )
    key = (("a", "b", "c", "d", 0),)
    backend.fail_next = True
    with pytest.raises(StoreError):
        cache.put(key, 0.5)  # write-through flush fails
    cache.flush()  # next flush must retry the same entry
    reloaded = FitnessCache(path=tmp_path / "cache.sqlite", namespace="ns")
    assert reloaded.get(key) == 0.5


def test_fitness_cache_pickle_drops_backend(tmp_path):
    cache = FitnessCache(path=tmp_path / "cache.sqlite", namespace="ns")
    cache.put((("a", "b", "c", "d", 0),), 0.5)
    clone = pickle.loads(pickle.dumps(cache))
    assert clone.path is None and clone.backend is None
    clone.put((("x", "y", "z", "w", 1),), 0.1)  # must not touch the store
    fresh = FitnessCache(path=tmp_path / "cache.sqlite", namespace="ns")
    assert fresh.get((("x", "y", "z", "w", 1),)) is None
