"""Shared fixtures: canonical circuits and locked designs."""

from __future__ import annotations

import pytest

from repro.circuits import load_circuit
from repro.locking import DMuxLocking, RandomLogicLocking
from repro.netlist import GateType, Netlist, parse_bench

C17_BENCH = """
INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)
OUTPUT(G22)
OUTPUT(G23)
G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
"""


@pytest.fixture
def c17() -> Netlist:
    """The genuine ISCAS-85 c17 netlist."""
    return parse_bench(C17_BENCH, "c17")


@pytest.fixture
def tiny() -> Netlist:
    """A 4-gate netlist exercising every common gate class."""
    n = Netlist("tiny")
    for name in ("a", "b", "c"):
        n.add_input(name)
    n.add_gate("g_and", GateType.AND, ["a", "b"])
    n.add_gate("g_xor", GateType.XOR, ["g_and", "c"])
    n.add_gate("g_not", GateType.NOT, ["g_xor"])
    n.add_gate("g_or", GateType.OR, ["g_not", "a"])
    n.add_output("g_or")
    n.add_output("g_xor")
    return n


@pytest.fixture
def rand100() -> Netlist:
    """A deterministic 100-gate random circuit (registry-parametric)."""
    return load_circuit("rand_100_7")


@pytest.fixture
def rll_locked(rand100):
    """rand100 locked with 8-bit XOR/XNOR RLL."""
    return RandomLogicLocking().lock(rand100, 8, seed_or_rng=21)


@pytest.fixture
def dmux_locked(rand100):
    """rand100 locked with 8-bit shared-key D-MUX."""
    return DMuxLocking("shared").lock(rand100, 8, seed_or_rng=21)
