"""Population evaluation engine: serial/parallel equivalence and caching.

The evaluator refactor moved the GA/NSGA-II hot path from a per-genome
loop into a batched pipeline (dedupe -> cache -> fan-out -> merge). These
tests pin the contract that made that safe: the process-pool backend is
*observationally identical* to the serial one — same results, same cache
accounting, same evaluation counts — and the persistent cache turns
repeated runs into pure lookups.
"""

from __future__ import annotations

import dataclasses
import json
import pickle

import pytest

from repro.circuits import load_circuit
from repro.ec import (
    AutoLock,
    AutoLockConfig,
    BatchStats,
    FitnessCache,
    GaConfig,
    GeneticAlgorithm,
    MuxLinkFitness,
    Nsga2,
    Nsga2Config,
    ProcessPoolEvaluator,
    SerialEvaluator,
    cache_namespace,
)
from repro.ec.fitness import MultiObjectiveFitness
from repro.ec.genotype import genotype_key, random_genotype


@pytest.fixture(scope="module")
def circuit():
    return load_circuit("rand_150_5")


def _strip_timing(stats):
    return dataclasses.replace(stats, elapsed_s=0.0, eval_wall_s=0.0)


class CountingFitness:
    """Cache-fronted, picklable fitness that counts real evaluations."""

    def __init__(self, cache: FitnessCache | None = None) -> None:
        self.cache = cache if cache is not None else FitnessCache()
        self.evaluations = 0

    def __call__(self, genes) -> float:
        key = genotype_key(genes)
        cached = self.cache.get(key)
        if cached is not None:
            return float(cached)
        self.evaluations += 1
        value = sum(g.k for g in genes) / len(genes)
        self.cache.put(key, value)
        return value


class PidFitness:
    """Picklable, cache-less fitness reporting which process ran it."""

    def __init__(self, offset: int) -> None:
        self.offset = offset

    def __call__(self, genes) -> float:
        import os

        return float(os.getpid() + self.offset)


# ----------------------------------------------------- GA equivalence
def _ga_run(circuit, evaluator, cache):
    fitness = MuxLinkFitness(circuit, predictor="bayes", attack_seed=5, cache=cache)
    config = GaConfig(key_length=6, population_size=6, generations=4, seed=9)
    result = GeneticAlgorithm(config).run(circuit, fitness, evaluator=evaluator)
    return result, fitness


def test_process_pool_ga_matches_serial_exactly(circuit):
    serial_cache, pool_cache = FitnessCache(), FitnessCache()
    serial, serial_fit = _ga_run(circuit, SerialEvaluator(), serial_cache)
    with ProcessPoolEvaluator(workers=2) as evaluator:
        pooled, pool_fit = _ga_run(circuit, evaluator, pool_cache)

    # Byte-identical search outcome.
    assert pooled.best_fitness == serial.best_fitness
    assert pooled.best_genotype == serial.best_genotype
    assert pooled.hall_of_fame == serial.hall_of_fame
    assert pooled.evaluations == serial.evaluations
    assert pooled.stopped_early == serial.stopped_early
    # Identical fitness history, modulo wall-clock fields.
    assert [_strip_timing(s) for s in pooled.history] == [
        _strip_timing(s) for s in serial.history
    ]
    # Identical accounting: fresh evaluations and cache counters.
    assert pool_fit.evaluations == serial_fit.evaluations
    assert (pool_cache.hits, pool_cache.misses) == (
        serial_cache.hits,
        serial_cache.misses,
    )
    assert pool_cache.store == serial_cache.store


def test_process_pool_nsga2_matches_serial_exactly(circuit):
    def nsga_run(evaluator):
        fitness = MultiObjectiveFitness(
            circuit,
            predictor="bayes",
            objectives=("muxlink", "depth"),
            attack_seed=7,
        )
        config = Nsga2Config(
            key_length=5, population_size=6, generations=3, seed=13
        )
        return Nsga2(config).run(circuit, fitness, evaluator=evaluator)

    serial = nsga_run(SerialEvaluator())
    with ProcessPoolEvaluator(workers=2) as evaluator:
        pooled = nsga_run(evaluator)

    assert pooled.front_genotypes == serial.front_genotypes
    assert pooled.front_objectives == serial.front_objectives
    assert pooled.evaluations == serial.evaluations
    assert pooled.history == serial.history


# ------------------------------------------------- dedupe + accounting
def test_duplicate_genotypes_dispatched_once(circuit):
    genes = random_genotype(circuit, 4, seed_or_rng=1)
    other = random_genotype(circuit, 4, seed_or_rng=2)
    population = [genes, other, list(genes), list(genes), other]

    fitness = CountingFitness()
    with ProcessPoolEvaluator(workers=2) as evaluator:
        values, stats = evaluator.evaluate(population, fitness)

    assert stats.size == 5 and stats.unique == 2
    assert stats.dispatched == 2, "each distinct genotype must be attacked once"
    assert fitness.evaluations == 2
    assert values[0] == values[2] == values[3]
    assert values[1] == values[4]
    # Serial hit/miss semantics: 2 first-occurrence misses, 3 replayed hits.
    assert fitness.cache.misses == 2 and fitness.cache.hits == 3


def test_cache_hits_accumulate_across_generations(circuit):
    genes = random_genotype(circuit, 4, seed_or_rng=3)
    fitness = CountingFitness()
    with ProcessPoolEvaluator(workers=2) as evaluator:
        _, first = evaluator.evaluate([genes, genes], fitness)
        _, second = evaluator.evaluate([genes], fitness)
        assert first.dispatched == 1 and first.cache_hits == 1
        assert second.dispatched == 0 and second.cache_hits == 1
        assert evaluator.total.size == 3
        assert evaluator.total.dispatched == 1
        assert evaluator.total.cache_hits == 2
    assert fitness.evaluations == 1


def test_pool_reused_across_generations_and_fitness_changes(circuit):
    """The pool must survive fitness-cache warm-up *and* fitness swaps.

    The worker snapshot is keyed on fitness object identity, not its
    (mutating) pickled state, and a genuinely new fitness re-sends the
    blob to the live workers instead of respawning the executor — a
    sweep runs many specs through one shared pool, so restarting per
    spec would silently forfeit the fan-out win.
    """
    fitness = CountingFitness()
    a = random_genotype(circuit, 4, seed_or_rng=5)
    b = random_genotype(circuit, 4, seed_or_rng=6)
    with ProcessPoolEvaluator(workers=2) as evaluator:
        evaluator.evaluate([a], fitness)
        pool_after_first = evaluator._pool
        epoch_after_first = evaluator._epoch
        assert pool_after_first is not None
        evaluator.evaluate([b], fitness)  # cache mutated since the snapshot
        assert evaluator._pool is pool_after_first, (
            "same fitness object must not trigger a pool rebuild"
        )
        assert evaluator._epoch == epoch_after_first, (
            "same fitness object must not re-ship its blob"
        )
        evaluator.evaluate([a], CountingFitness())  # genuinely new fitness
        assert evaluator._pool is pool_after_first, (
            "a new fitness must reuse the live workers (new epoch blob), "
            "not restart the executor"
        )
        assert evaluator._epoch == epoch_after_first + 1


def test_pool_worker_processes_survive_fitness_change(circuit):
    """The same worker *processes* answer batches before and after the
    dispatcher switches to a different fitness object.

    Which of the two pool processes serves a given task is a race, so
    the assertion bounds the *union* of observed pids: a respawned
    executor would surface fresh pids and push the union past the pool
    size, while the keep-alive pool can never exceed it.
    """
    import os

    a = random_genotype(circuit, 4, seed_or_rng=5)
    b = random_genotype(circuit, 4, seed_or_rng=6)
    with ProcessPoolEvaluator(workers=2) as evaluator:
        first, _ = evaluator.evaluate([a, b], PidFitness(0))
        second, _ = evaluator.evaluate([a, b], PidFitness(1_000_000))
        parent = os.getpid()
    pids_first = {int(v) for v in first}
    pids_second = {int(v) - 1_000_000 for v in second}
    assert parent not in (pids_first | pids_second), (
        "work must run in worker processes"
    )
    assert len(pids_first | pids_second) <= 2, (
        "fitness change must not respawn the worker processes"
    )


def test_unpicklable_cached_fitness_accounting_matches_serial(circuit):
    """The in-process fallback must not double-count evaluations/misses."""
    genes_a = random_genotype(circuit, 4, seed_or_rng=7)
    genes_b = random_genotype(circuit, 4, seed_or_rng=8)
    population = [genes_a, genes_b, list(genes_a)]

    serial_fit = CountingFitness()
    SerialEvaluator().evaluate(population, serial_fit)

    inner = CountingFitness()
    unpicklable = lambda genes: inner(genes)  # noqa: E731
    unpicklable.cache = inner.cache
    with ProcessPoolEvaluator(workers=2) as evaluator:
        with pytest.warns(RuntimeWarning, match="not picklable"):
            _, stats = evaluator.evaluate(population, unpicklable)

    assert inner.evaluations == serial_fit.evaluations == 2
    assert inner.cache.misses == serial_fit.cache.misses == 2
    assert inner.cache.hits == serial_fit.cache.hits == 1
    assert stats.dispatched == 2


def test_unpicklable_fitness_falls_back_in_process(circuit):
    genes = random_genotype(circuit, 4, seed_or_rng=4)
    calls = []
    fitness = lambda g: calls.append(1) or 0.25  # noqa: E731 - unpicklable
    with ProcessPoolEvaluator(workers=2) as evaluator:
        with pytest.warns(RuntimeWarning, match="not picklable"):
            values, stats = evaluator.evaluate([genes], fitness)
    assert values == [0.25] and len(calls) == 1
    assert stats.dispatched == 1


def test_process_pool_rejects_bad_worker_count():
    with pytest.raises(ValueError, match="workers"):
        ProcessPoolEvaluator(workers=0)


def test_batch_stats_merge():
    a = BatchStats(size=4, unique=3, cache_hits=1, dispatched=2, wall_s=0.5)
    b = BatchStats(size=2, unique=2, cache_hits=2, dispatched=0, wall_s=0.25)
    merged = a.merged(b)
    assert merged == BatchStats(
        size=6, unique=5, cache_hits=3, dispatched=2, wall_s=0.75
    )


# -------------------------------------------------- on-disk persistence
def test_fitness_cache_disk_round_trip(tmp_path):
    path = tmp_path / "cache.json"
    key = (("a", "b", "c", "d", 1),)
    cache = FitnessCache(path=path, namespace="ns1")
    cache.put(key, 0.5)
    cache.put((("e", "f", "g", "h", 0),), (0.1, 0.2))  # vector fitness

    reloaded = FitnessCache(path=path, namespace="ns1")
    assert reloaded.get(key) == 0.5
    assert reloaded.get((("e", "f", "g", "h", 0),)) == (0.1, 0.2)
    assert reloaded.hits == 2 and reloaded.misses == 0

    # Namespaces are isolated but share the file.
    other = FitnessCache(path=path, namespace="ns2")
    assert other.get(key) is None
    other.put(key, 0.9)
    assert FitnessCache(path=path, namespace="ns1").get(key) == 0.5
    assert FitnessCache(path=path, namespace="ns2").get(key) == 0.9

    # Wiping one namespace leaves the other intact.
    FitnessCache(path=path, namespace="ns1").wipe_disk()
    assert FitnessCache(path=path, namespace="ns1").get(key) is None
    assert FitnessCache(path=path, namespace="ns2").get(key) == 0.9


def test_fitness_cache_tolerates_corrupt_file(tmp_path):
    path = tmp_path / "cache.json"
    path.write_text("{not json")
    cache = FitnessCache(path=path, namespace="ns")
    assert cache.get((("a", "b", "c", "d", 0),)) is None
    cache.put((("a", "b", "c", "d", 0),), 0.5)  # overwrites the corrupt file
    assert json.loads(path.read_text())["ns"]


def test_fitness_cache_pickle_drops_path_and_lock(tmp_path):
    cache = FitnessCache(path=tmp_path / "cache.json", namespace="ns")
    cache.put((("a", "b", "c", "d", 0),), 0.5)
    clone = pickle.loads(pickle.dumps(cache))
    assert clone.path is None, "worker-side clones must not write the file"
    assert clone.store == cache.store
    clone.put((("x", "y", "z", "w", 1),), 0.1)  # must not touch disk
    assert "x" not in (tmp_path / "cache.json").read_text()


def test_cache_namespace_is_order_independent():
    a = cache_namespace("c17", predictor="mlp", ensemble=2)
    b = cache_namespace("c17", ensemble=2, predictor="mlp")
    assert a == b and a.startswith("c17|")
    assert cache_namespace("c17", predictor="bayes") != a


# ------------------------------------------- warm-cache AutoLock reruns
def test_autolock_warm_disk_cache_skips_all_attacks(circuit, tmp_path):
    config = AutoLockConfig(
        key_length=6,
        population_size=4,
        generations=2,
        fitness_predictor="bayes",
        report_predictor="bayes",
        report_ensemble=1,
        seed=3,
        cache_path=tmp_path / "fitness_cache.json",
    )
    cold = AutoLock(config).run(circuit)
    assert cold.fitness_evaluations > 0 and cold.report_evaluations > 0

    warm = AutoLock(config).run(circuit)
    assert warm.fitness_evaluations == 0, "GA loop must be 100% cache hits"
    assert warm.report_evaluations == 0, "report stage must be 100% cache hits"
    assert warm.cache_hits == cold.cache_hits + cold.fitness_evaluations
    # Identical verdicts from pure lookups.
    assert warm.evolved_accuracy == cold.evolved_accuracy
    assert warm.baseline_accuracy == cold.baseline_accuracy
    assert warm.ga.best_fitness == cold.ga.best_fitness
    assert warm.ga.hall_of_fame == cold.ga.hall_of_fame


def test_autolock_workers_match_serial(circuit, tmp_path):
    """Pool-sync mode stays byte-identical to serial at any worker count.

    ``workers >= 2`` defaults to the steady-state loop these days, so the
    sync-generational contract is pinned with ``async_mode=False`` (the
    async determinism contract lives in ``test_ec_loop.py``).
    """
    base = dict(
        key_length=6,
        population_size=4,
        generations=2,
        fitness_predictor="bayes",
        report_predictor="bayes",
        report_ensemble=1,
        seed=17,
    )
    serial = AutoLock(AutoLockConfig(**base)).run(circuit)
    pooled = AutoLock(
        AutoLockConfig(**base, workers=2, async_mode=False)
    ).run(circuit)
    assert pooled.evolved_accuracy == serial.evolved_accuracy
    assert pooled.baseline_accuracy == serial.baseline_accuracy
    assert pooled.ga.best_genotype == serial.ga.best_genotype
    assert pooled.ga.hall_of_fame == serial.ga.hall_of_fame
    assert pooled.fitness_evaluations == serial.fitness_evaluations
