"""GNN link predictor internals: hand-derived gradients vs finite differences."""

import numpy as np
import pytest

from repro.attacks.muxlink.gnn import (
    GnnLinkPredictor,
    _BlockDiagAdj,
    _GraphConvStack,
    normalized_adjacency,
    resolve_gnn_batch,
)
from repro.attacks.muxlink.graph import ObservedGraph
from repro.attacks.muxlink.subgraph import (
    extract_enclosing_subgraph,
    extract_enclosing_subgraphs,
)


def test_normalized_adjacency_rows_sum_to_one():
    adj = np.array([[0, 1, 0], [1, 0, 1], [0, 1, 0]], dtype=float)
    s = normalized_adjacency(adj)
    assert np.allclose(s.sum(axis=1), 1.0)
    assert s.shape == (3, 3)
    # Isolated node: only the self-loop contributes.
    iso = normalized_adjacency(np.zeros((2, 2)))
    assert np.allclose(iso, np.eye(2))


def test_graph_conv_stack_shapes():
    rng = np.random.default_rng(0)
    stack = _GraphConvStack(5, (7, 3), seed_or_rng=1)
    x = rng.normal(size=(4, 5))
    s = normalized_adjacency((rng.random((4, 4)) > 0.5).astype(float))
    s = normalized_adjacency(((s + s.T) > 0).astype(float))
    h = stack.forward(s, x)
    assert h.shape == (4, 10)  # 7 + 3 concatenated
    assert stack.out_dim == 10


def test_graph_conv_stack_gradients_match_finite_differences():
    """The hand-derived backward pass of the conv stack must agree with a
    central-difference approximation on every weight matrix."""
    rng = np.random.default_rng(3)
    n, f = 5, 4
    adj = (rng.random((n, n)) > 0.6).astype(float)
    adj = ((adj + adj.T) > 0).astype(float)
    np.fill_diagonal(adj, 0)
    s = normalized_adjacency(adj)
    x = rng.normal(size=(n, f))
    stack = _GraphConvStack(f, (6, 3), seed_or_rng=5)

    def loss_of_output(h):
        return float((h**2).sum())

    h = stack.forward(s, x)
    for p in stack.params():
        p.zero_grad()
    stack.backward(2 * h)

    eps = 1e-6
    for p in stack.params():
        analytic = p.grad.copy()
        numeric = np.zeros_like(p.value)
        it = np.nditer(p.value, flags=["multi_index"])
        while not it.finished:
            idx = it.multi_index
            original = p.value[idx]
            p.value[idx] = original + eps
            plus = loss_of_output(stack.forward(s, x))
            p.value[idx] = original - eps
            minus = loss_of_output(stack.forward(s, x))
            p.value[idx] = original
            numeric[idx] = (plus - minus) / (2 * eps)
            it.iternext()
        denom = np.maximum(np.abs(analytic) + np.abs(numeric), 1e-8)
        rel = float(np.max(np.abs(analytic - numeric) / denom))
        assert rel < 1e-5, f"{p.name}: gradient error {rel}"


def _ring_graph(n=12):
    g = ObservedGraph()
    for i in range(n):
        g.add_node(f"n{i}", "AND" if i % 2 else "NAND", gate=True)
    for i in range(n):
        g.add_edge(i, (i + 1) % n)
    g.compute_levels()
    return g


def test_gnn_end_to_end_gradient_descent_reduces_loss():
    g = _ring_graph()
    predictor = GnnLinkPredictor(
        hidden_dims=(8, 4), mlp_hidden=8, hops=2, epochs=10, n_train=16, lr=1e-2
    )
    predictor.fit(g, seed_or_rng=7)
    assert len(predictor.train_history) == 10
    assert predictor.train_history[-1] < predictor.train_history[0], (
        f"training loss did not decrease: {predictor.train_history}"
    )


def test_gnn_score_is_deterministic_after_fit():
    g = _ring_graph()
    predictor = GnnLinkPredictor(hidden_dims=(6,), epochs=2, n_train=10)
    predictor.fit(g, seed_or_rng=1)
    assert predictor.score_link(0, 5) == predictor.score_link(0, 5)


def test_gnn_requires_fit():
    predictor = GnnLinkPredictor()
    with pytest.raises(Exception):
        predictor.score_link(0, 1)


def test_gnn_subgraph_pipeline_on_disconnected_pair():
    """Scoring a pair with no connecting path must still work (DRNL 0s)."""
    g = ObservedGraph()
    a = g.add_node("a", "AND", gate=True)
    b = g.add_node("b", "OR", gate=True)
    c = g.add_node("c", "NOT", gate=True)
    d = g.add_node("d", "NAND", gate=True)
    g.add_edge(a, b)
    g.add_edge(c, d)
    g.compute_levels()
    sub = extract_enclosing_subgraph(g, a, d, hops=2)
    assert sub.n_nodes >= 2
    predictor = GnnLinkPredictor(hidden_dims=(4,), epochs=1, n_train=4)
    predictor.fit(g, seed_or_rng=2)
    assert np.isfinite(predictor.score_link(a, d))


# ----------------------------------------------------------- batched path
def _random_graph(n=60, n_edges=150, seed=0):
    rng = np.random.default_rng(seed)
    g = ObservedGraph()
    types = ["AND", "OR", "NAND", "NOR", "XOR", "INV"]
    for i in range(n):
        g.add_node(f"n{i}", types[int(rng.integers(0, len(types)))], gate=True)
    for _ in range(n_edges):
        u, v = int(rng.integers(0, n)), int(rng.integers(0, n))
        if u != v:
            g.add_edge(u, v)
    g.compute_levels()
    return g


def _sample_pairs(g, k, seed=1):
    rng = np.random.default_rng(seed)
    pairs = []
    while len(pairs) < k:
        u, v = int(rng.integers(0, g.n_nodes)), int(rng.integers(0, g.n_nodes))
        if u != v:
            pairs.append((u, v))
    return pairs


def test_batched_extraction_equals_scalar():
    g = _random_graph()
    # mix of random pairs, true edges, and a disconnected pair
    pairs = _sample_pairs(g, 20)
    pairs += [tuple(g.directed_edges[0]), tuple(g.directed_edges[7])]
    iso = g.add_node("iso", "AND", gate=True)
    g.compute_levels()
    pairs.append((0, iso))
    batched = extract_enclosing_subgraphs(g, pairs, hops=2, max_nodes=40)
    for (u, v), got in zip(pairs, batched):
        want = extract_enclosing_subgraph(g, u, v, hops=2, max_nodes=40)
        assert got.node_ids == want.node_ids
        assert np.array_equal(got.adj, want.adj)
        assert np.array_equal(got.drnl, want.drnl)


def test_block_diag_operator_matches_dense():
    g = _random_graph(n=30, n_edges=70, seed=3)
    subs = extract_enclosing_subgraphs(g, _sample_pairs(g, 5, seed=4), hops=2)
    sizes = {sub.n_nodes for sub in subs}
    assert len(sizes) > 1, "want a ragged batch"
    op = _BlockDiagAdj.from_subgraphs(subs)
    blocks = [normalized_adjacency(sub.adj) for sub in subs]
    n_total = sum(b.shape[0] for b in blocks)
    dense = np.zeros((n_total, n_total))
    at = 0
    for b in blocks:
        dense[at : at + b.shape[0], at : at + b.shape[0]] = b
        at += b.shape[0]
    rng = np.random.default_rng(0)
    x = rng.normal(size=(n_total, 6))
    assert np.allclose(op @ x, dense @ x)
    assert np.allclose(op.T @ x, dense.T @ x)
    assert op.T.T is op


def test_batched_logits_match_scalar_on_ragged_batch():
    """No padding/block-diag leakage: every logit in a ragged batch equals
    the same link scored alone through the scalar path."""
    g = _random_graph(seed=5)
    predictor = GnnLinkPredictor(
        hidden_dims=(8, 4), mlp_hidden=8, epochs=2, n_train=30, batch="auto"
    )
    predictor.fit(g, seed_or_rng=9)
    pairs = _sample_pairs(g, 17, seed=6)  # odd count, ragged sizes
    batched = predictor.score_links(pairs)
    scalar = np.array([predictor.score_link(u, v) for u, v in pairs])
    assert batched.shape == (17,)
    assert np.allclose(batched, scalar, rtol=0, atol=1e-9)


def test_batched_backward_matches_finite_differences():
    """FD check through the full batched pipeline: block-diagonal conv,
    segment readout, MLP head — every parameter."""
    g = _random_graph(n=25, n_edges=60, seed=7)
    predictor = GnnLinkPredictor(hidden_dims=(5, 3), mlp_hidden=4, batch="auto")
    predictor._graph = g
    predictor._build(11)
    subs = extract_enclosing_subgraphs(
        g, _sample_pairs(g, 4, seed=8), hops=2, max_nodes=20
    )

    def loss_now():
        logits, _ = predictor._forward_batch(subs, train=True)
        return float((logits**2).sum()), logits

    _, logits = loss_now()
    for p in predictor.params():
        p.zero_grad()
    predictor._forward_batch(subs, train=True)
    predictor._backward_batch(2.0 * logits, predictor._forward_batch(subs, train=True)[1])

    eps = 1e-6
    for p in predictor.params():
        analytic = p.grad.copy()
        numeric = np.zeros_like(p.value)
        it = np.nditer(p.value, flags=["multi_index"])
        while not it.finished:
            idx = it.multi_index
            original = p.value[idx]
            p.value[idx] = original + eps
            plus, _ = loss_now()
            p.value[idx] = original - eps
            minus, _ = loss_now()
            p.value[idx] = original
            numeric[idx] = (plus - minus) / (2 * eps)
            it.iternext()
        denom = np.maximum(np.abs(analytic) + np.abs(numeric), 1e-8)
        rel = float(np.max(np.abs(analytic - numeric) / denom))
        assert rel < 1e-5, f"{p.name}: gradient error {rel}"


def test_training_parity_auto_vs_off():
    g = _random_graph(seed=10)
    auto = GnnLinkPredictor(hidden_dims=(6, 3), epochs=3, n_train=24, batch="auto")
    off = GnnLinkPredictor(hidden_dims=(6, 3), epochs=3, n_train=24, batch="off")
    auto.fit(g, seed_or_rng=13)
    off.fit(g, seed_or_rng=13)
    assert np.allclose(auto.train_history, off.train_history, atol=1e-9)
    pairs = _sample_pairs(g, 10, seed=14)
    assert np.allclose(
        auto.score_links(pairs), off.score_links(pairs), atol=1e-9
    )


def test_batch_off_never_enters_batched_code(monkeypatch):
    """batch="off" must keep the legacy scalar pipeline byte-for-byte; we
    pin that by making every batched entry point explode."""
    import repro.attacks.muxlink.gnn as gnn_mod

    def boom(*args, **kwargs):
        raise AssertionError("batched code path entered with batch='off'")

    monkeypatch.setattr(gnn_mod, "extract_enclosing_subgraphs", boom)
    monkeypatch.setattr(GnnLinkPredictor, "_forward_batch", boom)
    monkeypatch.setattr(GnnLinkPredictor, "_backward_batch", boom)
    monkeypatch.setattr(gnn_mod._BlockDiagAdj, "from_subgraphs", boom)

    g = _ring_graph()
    predictor = GnnLinkPredictor(hidden_dims=(6,), epochs=2, n_train=10, batch="off")
    predictor.fit(g, seed_or_rng=1)
    pairs = [(0, 5), (1, 4), (2, 9)]
    batched = predictor.score_links(pairs)
    loop = np.array([predictor.score_link(u, v) for u, v in pairs])
    assert np.array_equal(batched, loop)  # bitwise, not just close


def test_batch_knob_resolution(monkeypatch):
    from repro.errors import AttackError

    monkeypatch.delenv("REPRO_GNN_BATCH", raising=False)
    assert resolve_gnn_batch(None) == "auto"
    assert resolve_gnn_batch("off") == "off"
    monkeypatch.setenv("REPRO_GNN_BATCH", "off")
    assert resolve_gnn_batch(None) == "off"
    assert GnnLinkPredictor().batch == "off"
    # explicit argument beats the environment
    assert GnnLinkPredictor(batch="auto").batch == "auto"
    with pytest.raises(AttackError, match="auto.*off"):
        resolve_gnn_batch("sometimes")
    monkeypatch.setenv("REPRO_GNN_BATCH", "bogus")
    with pytest.raises(AttackError, match="bogus"):
        GnnLinkPredictor()


def test_tiny_batch_takes_scalar_path():
    g = _ring_graph()
    predictor = GnnLinkPredictor(hidden_dims=(6,), epochs=1, n_train=10)
    predictor.fit(g, seed_or_rng=3)
    single = predictor.score_links([(0, 5)])
    assert np.array_equal(single, np.array([predictor.score_link(0, 5)]))
