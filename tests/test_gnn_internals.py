"""GNN link predictor internals: hand-derived gradients vs finite differences."""

import numpy as np
import pytest

from repro.attacks.muxlink.gnn import (
    GnnLinkPredictor,
    _GraphConvStack,
    normalized_adjacency,
)
from repro.attacks.muxlink.graph import ObservedGraph
from repro.attacks.muxlink.subgraph import extract_enclosing_subgraph


def test_normalized_adjacency_rows_sum_to_one():
    adj = np.array([[0, 1, 0], [1, 0, 1], [0, 1, 0]], dtype=float)
    s = normalized_adjacency(adj)
    assert np.allclose(s.sum(axis=1), 1.0)
    assert s.shape == (3, 3)
    # Isolated node: only the self-loop contributes.
    iso = normalized_adjacency(np.zeros((2, 2)))
    assert np.allclose(iso, np.eye(2))


def test_graph_conv_stack_shapes():
    rng = np.random.default_rng(0)
    stack = _GraphConvStack(5, (7, 3), seed_or_rng=1)
    x = rng.normal(size=(4, 5))
    s = normalized_adjacency((rng.random((4, 4)) > 0.5).astype(float))
    s = normalized_adjacency(((s + s.T) > 0).astype(float))
    h = stack.forward(s, x)
    assert h.shape == (4, 10)  # 7 + 3 concatenated
    assert stack.out_dim == 10


def test_graph_conv_stack_gradients_match_finite_differences():
    """The hand-derived backward pass of the conv stack must agree with a
    central-difference approximation on every weight matrix."""
    rng = np.random.default_rng(3)
    n, f = 5, 4
    adj = (rng.random((n, n)) > 0.6).astype(float)
    adj = ((adj + adj.T) > 0).astype(float)
    np.fill_diagonal(adj, 0)
    s = normalized_adjacency(adj)
    x = rng.normal(size=(n, f))
    stack = _GraphConvStack(f, (6, 3), seed_or_rng=5)

    def loss_of_output(h):
        return float((h**2).sum())

    h = stack.forward(s, x)
    for p in stack.params():
        p.zero_grad()
    stack.backward(2 * h)

    eps = 1e-6
    for p in stack.params():
        analytic = p.grad.copy()
        numeric = np.zeros_like(p.value)
        it = np.nditer(p.value, flags=["multi_index"])
        while not it.finished:
            idx = it.multi_index
            original = p.value[idx]
            p.value[idx] = original + eps
            plus = loss_of_output(stack.forward(s, x))
            p.value[idx] = original - eps
            minus = loss_of_output(stack.forward(s, x))
            p.value[idx] = original
            numeric[idx] = (plus - minus) / (2 * eps)
            it.iternext()
        denom = np.maximum(np.abs(analytic) + np.abs(numeric), 1e-8)
        rel = float(np.max(np.abs(analytic - numeric) / denom))
        assert rel < 1e-5, f"{p.name}: gradient error {rel}"


def _ring_graph(n=12):
    g = ObservedGraph()
    for i in range(n):
        g.add_node(f"n{i}", "AND" if i % 2 else "NAND", gate=True)
    for i in range(n):
        g.add_edge(i, (i + 1) % n)
    g.compute_levels()
    return g


def test_gnn_end_to_end_gradient_descent_reduces_loss():
    g = _ring_graph()
    predictor = GnnLinkPredictor(
        hidden_dims=(8, 4), mlp_hidden=8, hops=2, epochs=10, n_train=16, lr=1e-2
    )
    predictor.fit(g, seed_or_rng=7)
    assert len(predictor.train_history) == 10
    assert predictor.train_history[-1] < predictor.train_history[0], (
        f"training loss did not decrease: {predictor.train_history}"
    )


def test_gnn_score_is_deterministic_after_fit():
    g = _ring_graph()
    predictor = GnnLinkPredictor(hidden_dims=(6,), epochs=2, n_train=10)
    predictor.fit(g, seed_or_rng=1)
    assert predictor.score_link(0, 5) == predictor.score_link(0, 5)


def test_gnn_requires_fit():
    predictor = GnnLinkPredictor()
    with pytest.raises(Exception):
        predictor.score_link(0, 1)


def test_gnn_subgraph_pipeline_on_disconnected_pair():
    """Scoring a pair with no connecting path must still work (DRNL 0s)."""
    g = ObservedGraph()
    a = g.add_node("a", "AND", gate=True)
    b = g.add_node("b", "OR", gate=True)
    c = g.add_node("c", "NOT", gate=True)
    d = g.add_node("d", "NAND", gate=True)
    g.add_edge(a, b)
    g.add_edge(c, d)
    g.compute_levels()
    sub = extract_enclosing_subgraph(g, a, d, hops=2)
    assert sub.n_nodes >= 2
    predictor = GnnLinkPredictor(hidden_dims=(4,), epochs=1, n_train=4)
    predictor.fit(g, seed_or_rng=2)
    assert np.isfinite(predictor.score_link(a, d))
