"""Alternative single-trajectory optimisers (research plan bullet 5)."""

import pytest

from repro.circuits import load_circuit
from repro.ec import HillClimber, RandomSearch, SimulatedAnnealing
from repro.ec.genotype import genotype_is_valid
from repro.errors import EvolutionError


@pytest.fixture(scope="module")
def circuit():
    return load_circuit("rand_120_8")


def ones_fitness(genes):
    return sum(g.k for g in genes) / len(genes)


@pytest.mark.parametrize("searcher_cls", [RandomSearch, HillClimber, SimulatedAnnealing],
                         ids=["random", "hill", "anneal"])
def test_search_improves_and_tracks_budget(searcher_cls, circuit):
    searcher = searcher_cls(key_length=8, evaluations=40, seed=3)
    result = searcher.run(circuit, ones_fitness)
    assert result.evaluations == 40
    assert len(result.trajectory) == 40
    # Trajectory records best-so-far: non-increasing.
    assert all(b <= a + 1e-12 for a, b in zip(result.trajectory, result.trajectory[1:]))
    assert result.best_fitness == result.trajectory[-1]
    assert result.best_fitness <= result.trajectory[0]
    assert genotype_is_valid(circuit, result.best_genotype)
    assert ones_fitness(result.best_genotype) == pytest.approx(result.best_fitness)


def test_hill_climber_beats_random_on_smooth_landscape(circuit):
    """On the trivially smooth bit-count landscape, local search with key
    flips must reach the optimum while random search rarely does at K=12."""
    from repro.ec.operators import MutationConfig

    hill = HillClimber(
        key_length=12, evaluations=120,
        mutation=MutationConfig(flip_key=0.2, relocate=0.0, reroute_partner=0.0),
        seed=5,
    ).run(circuit, ones_fitness)
    rand = RandomSearch(key_length=12, evaluations=120, seed=5).run(
        circuit, ones_fitness
    )
    assert hill.best_fitness <= rand.best_fitness
    assert hill.best_fitness <= 1.0 / 12 + 1e-9


def test_annealing_accepts_then_converges(circuit):
    result = SimulatedAnnealing(
        key_length=8, evaluations=60, t_start=0.2, t_end=0.01, seed=7
    ).run(circuit, ones_fitness)
    assert result.best_fitness <= result.trajectory[0]


def test_parameter_validation(circuit):
    with pytest.raises(EvolutionError):
        RandomSearch(key_length=8, evaluations=0)
    with pytest.raises(EvolutionError):
        SimulatedAnnealing(key_length=8, evaluations=10, t_start=0.0)
    with pytest.raises(EvolutionError):
        SimulatedAnnealing(key_length=8, evaluations=10, t_start=0.1, t_end=0.5)


def test_determinism(circuit):
    a = SimulatedAnnealing(key_length=6, evaluations=30, seed=11).run(
        circuit, ones_fitness
    )
    b = SimulatedAnnealing(key_length=6, evaluations=30, seed=11).run(
        circuit, ones_fitness
    )
    assert a.best_fitness == b.best_fitness
    assert a.trajectory == b.trajectory
