"""Simulation substrate: packing, the simulator, and equivalence checks."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.circuits import load_circuit
from repro.errors import SimulationError
from repro.netlist import GateType, Netlist
from repro.netlist.gates import evaluate_bits
from repro.sim import (
    check_equivalence,
    exhaustive_patterns,
    output_error_rate,
    pack_bits,
    random_patterns,
    simulate,
    simulate_bits,
    unpack_bits,
    oracle_fn,
)
from repro.sim.patterns import constant_words, n_words_for


# ---------------------------------------------------------------- patterns
@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=300))
def test_pack_unpack_roundtrip(bits):
    words = pack_bits(bits)
    assert len(words) == n_words_for(len(bits))
    assert np.array_equal(unpack_bits(words, len(bits)), np.array(bits, dtype=np.uint8))


@pytest.mark.parametrize("n", [1, 63, 64, 65, 100, 127, 128, 129])
def test_pack_unpack_non_multiple_of_64(n):
    """Padding bits above ``n`` never leak into the unpacked vector."""
    bits = np.resize(np.array([1, 0, 1, 1, 0], dtype=np.uint8), n)
    words = pack_bits(bits)
    assert np.array_equal(unpack_bits(words, n), bits)
    # All-ones input: every payload bit set, every pad bit must stay 0.
    ones = np.ones(n, dtype=np.uint8)
    packed_ones = pack_bits(ones)
    assert np.array_equal(unpack_bits(packed_ones, n), ones)
    pad = len(packed_ones) * 64 - n
    if pad:
        top = int(packed_ones[-1])
        assert top >> (64 - pad) == 0, "padding bits are not zero"


def test_pack_rejects_matrices():
    with pytest.raises(SimulationError):
        pack_bits(np.zeros((2, 2)))


def test_n_words_guard():
    with pytest.raises(SimulationError):
        n_words_for(0)


def test_unpack_guard():
    with pytest.raises(SimulationError):
        unpack_bits(np.zeros(1, dtype=np.uint64), 65)


def test_constant_words():
    ones = constant_words(1, 100)
    zeros = constant_words(0, 100)
    assert np.all(unpack_bits(ones, 100) == 1)
    assert np.all(unpack_bits(zeros, 100) == 0)


def test_exhaustive_patterns_cover_all():
    packed, n = exhaustive_patterns(["a", "b", "c"])
    assert n == 8
    rows = {
        tuple(int(unpack_bits(packed[s], n)[j]) for s in ("a", "b", "c"))
        for j in range(n)
    }
    assert len(rows) == 8


def test_exhaustive_guard():
    with pytest.raises(SimulationError):
        exhaustive_patterns([f"x{i}" for i in range(30)])


def test_random_patterns_deterministic():
    a = random_patterns(["x", "y"], 128, 42)
    b = random_patterns(["x", "y"], 128, 42)
    assert np.array_equal(a["x"], b["x"]) and np.array_equal(a["y"], b["y"])


# ---------------------------------------------------------------- simulator
def test_c17_exhaustive_against_reference(c17):
    """Bit-parallel simulation agrees with naive per-pattern evaluation."""
    packed, n = exhaustive_patterns(c17.inputs)
    result = simulate(c17, packed, n)
    for j in range(n):
        values = {s: int(unpack_bits(packed[s], n)[j]) for s in c17.inputs}
        for name in c17.topological_order():
            gate = c17.gates[name]
            values[name] = evaluate_bits(gate.gtype, [values[x] for x in gate.fanins])
        for out in c17.outputs:
            assert int(result.bits(out)[j]) == values[out]


def test_simulate_bits_key_broadcast(dmux_locked):
    n = dmux_locked.netlist
    vectors = {s: np.array([0, 1, 0, 1]) for s in n.inputs}
    res = simulate_bits(n, vectors, key=dict(dmux_locked.key))
    assert res.n_patterns == 4
    out = res.output_matrix()
    assert out.shape == (4, len(n.outputs))


def test_simulate_bits_errors(dmux_locked, c17):
    with pytest.raises(SimulationError, match="requires key bits"):
        simulate_bits(dmux_locked.netlist, {s: [0] for s in dmux_locked.netlist.inputs})
    with pytest.raises(SimulationError, match="unknown key"):
        simulate_bits(c17, {s: [0] for s in c17.inputs}, key={"ghost": 1})
    with pytest.raises(SimulationError, match="differing lengths"):
        vec = {s: [0] for s in c17.inputs}
        vec["G1"] = [0, 1]
        simulate_bits(c17, vec)


def test_simulate_bits_empty_input_dict(c17):
    """No vectors at all is reported as such, not as a length mismatch."""
    with pytest.raises(SimulationError, match="input_bits is empty"):
        simulate_bits(c17, {})


def test_simulate_bits_missing_primary_input(c17):
    vec = {s: [0] for s in c17.inputs[1:]}
    with pytest.raises(SimulationError, match="missing primary inputs"):
        simulate_bits(c17, vec)


def test_simulate_bits_rejects_non_input_signals(c17, dmux_locked):
    vec = {s: [0] for s in c17.inputs}
    vec["G22"] = [0]  # an output, not an input
    with pytest.raises(SimulationError, match="non-input signals"):
        simulate_bits(c17, vec)
    # Key bits passed as pattern vectors get a pointed hint.
    n = dmux_locked.netlist
    kvec = {s: [0] for s in n.inputs}
    kvec[n.key_inputs[0]] = [0]
    with pytest.raises(SimulationError, match="key inputs belong in key="):
        simulate_bits(n, kvec, key=dict(dmux_locked.key))


def test_simulate_missing_input(c17):
    with pytest.raises(SimulationError, match="missing value"):
        simulate(c17, {}, 1)


def test_const_gates_simulation():
    n = Netlist("const")
    n.add_input("a")
    n.add_gate("one", GateType.CONST1, [])
    n.add_gate("z", GateType.AND, ["a", "one"])
    n.add_output("z")
    res = simulate_bits(n, {"a": np.array([0, 1])})
    assert list(res.bits("z")) == [0, 1]


def test_oracle_fn(c17):
    oracle = oracle_fn(c17)
    out = oracle({s: 1 for s in c17.inputs})
    assert out == {"G22": 1, "G23": 0}


def test_oracle_rejects_locked(dmux_locked):
    with pytest.raises(SimulationError):
        oracle_fn(dmux_locked.netlist)


def test_oracle_batch_matches_singles(c17):
    oracle = oracle_fn(c17)
    queries = [
        dict(zip(c17.inputs, bits))
        for bits in itertools.product([0, 1], repeat=len(c17.inputs))
    ]
    assert oracle.batch(queries) == [oracle(q) for q in queries]
    assert oracle.batch([]) == []


# ------------------------------------------------------------- equivalence
def test_equivalence_identity(c17):
    res = check_equivalence(c17, c17.copy())
    assert res.equal and res.method == "exhaustive"


def test_equivalence_detects_difference(c17):
    other = c17.copy()
    other.rewire_pin("G22", 0, "G1")
    res = check_equivalence(c17, other)
    assert not res.equal
    assert res.mismatched_output in ("G22", "G23")
    # The counterexample must actually witness the difference.
    cex = res.counterexample
    left = simulate_bits(c17, {s: np.array([cex[s]]) for s in c17.inputs})
    right = simulate_bits(other, {s: np.array([cex[s]]) for s in c17.inputs})
    out = res.mismatched_output
    assert int(left.bits(out)[0]) != int(right.bits(out)[0])


def test_equivalence_locked_with_key(dmux_locked):
    res = check_equivalence(
        dmux_locked.original,
        dmux_locked.netlist,
        key_right=dict(dmux_locked.key),
        seed_or_rng=0,
    )
    assert res.equal


def test_equivalence_interface_mismatch(c17, tiny):
    with pytest.raises(SimulationError):
        check_equivalence(c17, tiny)


def test_equivalence_random_method():
    big = load_circuit("rand_200_3")
    assert len(big.inputs) > 12
    res = check_equivalence(big, big.copy(), n_random=256, seed_or_rng=1)
    assert res.equal and res.method == "random"


def test_output_error_rate_bounds(rll_locked):
    correct = output_error_rate(
        rll_locked.original, rll_locked.netlist, dict(rll_locked.key), seed_or_rng=0
    )
    assert correct == 0.0
    wrong_key = dict(rll_locked.key.flipped(0))
    wrong = output_error_rate(
        rll_locked.original, rll_locked.netlist, wrong_key, seed_or_rng=0
    )
    assert 0.0 < wrong <= 1.0
