"""Random logic locking (XOR/XNOR) invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.circuits import load_circuit
from repro.errors import LockingError
from repro.locking import RandomLogicLocking
from repro.netlist import validate_netlist
from repro.netlist.gates import GateType
from repro.sim import check_equivalence


def test_structure(rll_locked):
    netlist = rll_locked.netlist
    validate_netlist(netlist)
    assert len(netlist.key_inputs) == 8
    assert len(netlist.gates) == len(rll_locked.original.gates) + 8
    assert rll_locked.scheme == "rll"
    assert rll_locked.key_length == 8


def test_keygate_types_match_bits(rll_locked):
    """XOR for key bit 0, XNOR for key bit 1 — the EPIC convention."""
    for rec in rll_locked.insertions:
        gate = rll_locked.netlist.gates[rec.keygate]
        expected = GateType.XNOR if rec.key_bit else GateType.XOR
        assert gate.gtype is expected
        assert rec.locked_signal in gate.fanins
        assert rec.key_name in gate.fanins


def test_correct_key_preserves_function(rll_locked):
    res = check_equivalence(
        rll_locked.original,
        rll_locked.netlist,
        key_right=dict(rll_locked.key),
        seed_or_rng=3,
    )
    assert res.equal


def test_wrong_key_changes_function(rll_locked):
    wrong = rll_locked.key.flipped(0)
    res = check_equivalence(
        rll_locked.original,
        rll_locked.netlist,
        key_right=dict(wrong),
        n_random=2048,
        seed_or_rng=3,
    )
    assert not res.equal, "flipping an RLL key bit must corrupt the function"


def test_nets_locked_once(rll_locked):
    locked_signals = [rec.locked_signal for rec in rll_locked.insertions]
    assert len(locked_signals) == len(set(locked_signals))


def test_original_untouched(rand100):
    before = rand100.copy()
    RandomLogicLocking().lock(rand100, 8, seed_or_rng=1)
    assert rand100.structurally_equal(before)


def test_too_long_key_rejected(c17):
    with pytest.raises(LockingError, match="lockable nets"):
        RandomLogicLocking().lock(c17, 500, seed_or_rng=1)
    with pytest.raises(LockingError):
        RandomLogicLocking().lock(c17, 0, seed_or_rng=1)


def test_determinism(rand100):
    a = RandomLogicLocking().lock(rand100, 8, seed_or_rng=9)
    b = RandomLogicLocking().lock(rand100, 8, seed_or_rng=9)
    assert a.netlist.structurally_equal(b.netlist)
    assert a.key == b.key


@settings(max_examples=10, deadline=None)
@given(
    st.integers(min_value=30, max_value=80),
    st.integers(min_value=0, max_value=10**6),
    st.integers(min_value=1, max_value=12),
)
def test_equivalence_property(n_gates, seed, key_len):
    """Locked-with-correct-key ≡ original, for arbitrary circuits/keys."""
    circuit = load_circuit(f"rand_{n_gates}_{seed}")
    locked = RandomLogicLocking().lock(circuit, key_len, seed_or_rng=seed)
    validate_netlist(locked.netlist)
    res = check_equivalence(
        circuit, locked.netlist, key_right=dict(locked.key),
        n_random=512, seed_or_rng=seed,
    )
    assert res.equal
