"""Benchmark-circuit suite: registry, profiles, generator invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.circuits import (
    ISCAS85_PROFILES,
    CircuitProfile,
    available_circuits,
    generate_circuit,
    load_circuit,
    synthetic_suite,
)
from repro.errors import NetlistError
from repro.netlist import validate_netlist
from repro.netlist.validate import dangling_signals


def test_available_circuits_contains_suite():
    names = available_circuits()
    assert "c17" in names
    assert "c432_syn" in names and "c7552_syn" in names


def test_c17_is_genuine():
    c17 = load_circuit("c17")
    assert len(c17.gates) == 6
    assert all(g.gtype.value == "NAND" for g in c17.gates.values())


def test_load_returns_independent_copies():
    a = load_circuit("c432_syn")
    b = load_circuit("c432_syn")
    a.add_input("extra")
    assert "extra" not in b


def test_determinism():
    a = load_circuit("c880_syn")
    b = load_circuit("c880_syn")
    assert a.structurally_equal(b)


def test_unknown_circuit():
    with pytest.raises(NetlistError, match="unknown circuit"):
        load_circuit("c9999")


def test_parametric_random_circuits():
    a = load_circuit("rand_50_1")
    b = load_circuit("rand_50_2")
    assert not a.structurally_equal(b)
    validate_netlist(a)


@pytest.mark.parametrize("name", sorted(ISCAS85_PROFILES))
def test_profiles_match_interface(name):
    profile = ISCAS85_PROFILES[name]
    circuit = load_circuit(name)
    validate_netlist(circuit)
    assert len(circuit.inputs) == profile.n_inputs
    assert len(circuit.outputs) == profile.n_outputs
    # Gate count may exceed the profile slightly (XOR merge of dangling
    # logic) but must stay within 5 %.
    assert profile.n_gates <= len(circuit.gates) <= int(profile.n_gates * 1.05)
    # Depth matches the ISCAS-85 target within a small tolerance.
    assert abs(circuit.depth() - profile.target_depth) <= 2
    # No dead logic (dangling primary inputs are impossible by construction).
    assert [s for s in dangling_signals(circuit) if s not in circuit.inputs] == []


def test_synthetic_suite_size_cap():
    small = synthetic_suite(max_gates=600)
    names = [c.name for c in small]
    assert "c17" in names and "c432_syn" in names
    assert all(len(c) <= 600 or c.name == "c17" for c in small)


def test_profile_validation():
    with pytest.raises(NetlistError):
        CircuitProfile("x", n_inputs=0, n_outputs=1, n_gates=1)
    with pytest.raises(NetlistError):
        CircuitProfile("x", n_inputs=1, n_outputs=1, n_gates=1, target_depth=0)
    with pytest.raises(NetlistError):
        CircuitProfile("x", n_inputs=1, n_outputs=5, n_gates=2)
    with pytest.raises(NetlistError):
        CircuitProfile("x", n_inputs=1, n_outputs=1, n_gates=1, max_fanin=1)


@settings(max_examples=15, deadline=None)
@given(
    st.integers(min_value=5, max_value=40),
    st.integers(min_value=2, max_value=6),
    st.integers(min_value=10, max_value=120),
    st.integers(min_value=2, max_value=12),
    st.integers(min_value=0, max_value=10**6),
)
def test_generator_invariants(n_inputs, n_outputs, n_gates, depth, seed):
    """Generated circuits are valid, match the interface, and hit depth."""
    if n_outputs > n_gates:
        n_outputs = n_gates
    profile = CircuitProfile(
        name="prop",
        n_inputs=n_inputs,
        n_outputs=n_outputs,
        n_gates=n_gates,
        target_depth=depth,
        seed=seed,
    )
    circuit = generate_circuit(profile)
    validate_netlist(circuit)
    assert len(circuit.inputs) == n_inputs
    assert len(circuit.outputs) == n_outputs
    assert circuit.depth() >= min(depth, n_gates) - 1
    # Every input drives something.
    fanouts = circuit.fanouts()
    assert all(fanouts[s] for s in circuit.inputs)
