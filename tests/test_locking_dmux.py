"""D-MUX pairwise MUX locking: functional, structural and safety invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.circuits import load_circuit
from repro.errors import LockingError
from repro.locking import (
    DMuxLocking,
    MuxGene,
    apply_gene,
    gene_applicable,
    sample_gene,
)
from repro.locking.dmux import lockable_wires
from repro.netlist import GateType, validate_netlist
from repro.sim import check_equivalence


def test_structure_shared(dmux_locked):
    netlist = dmux_locked.netlist
    validate_netlist(netlist)
    assert len(netlist.key_inputs) == 8
    # Shared strategy: 2 MUXes per key bit.
    muxes = [g for g in netlist.gates.values() if g.gtype is GateType.MUX]
    assert len(muxes) == 16
    for mux in muxes:
        assert mux.fanins[0] in netlist.key_inputs, "select pin must be a key"


def test_correct_key_preserves_function(dmux_locked):
    res = check_equivalence(
        dmux_locked.original,
        dmux_locked.netlist,
        key_right=dict(dmux_locked.key),
        seed_or_rng=4,
    )
    assert res.equal


def test_two_key_strategy(rand100):
    locked = DMuxLocking("two_key").lock(rand100, 8, seed_or_rng=5)
    validate_netlist(locked.netlist)
    muxes = [g for g in locked.netlist.gates.values() if g.gtype is GateType.MUX]
    assert len(muxes) == 8, "two_key: one MUX per key bit"
    res = check_equivalence(
        rand100, locked.netlist, key_right=dict(locked.key), seed_or_rng=4
    )
    assert res.equal
    # Records carry distinct key names per MUX.
    for rec in locked.insertions:
        assert rec.key_name_i != rec.key_name_j


def test_two_key_needs_even_length(rand100):
    with pytest.raises(LockingError, match="even"):
        DMuxLocking("two_key").lock(rand100, 7, seed_or_rng=1)


def test_unknown_strategy():
    with pytest.raises(LockingError):
        DMuxLocking("bogus")


def test_insertion_metadata_consistency(dmux_locked):
    netlist = dmux_locked.netlist
    for rec in dmux_locked.insertions:
        for site in rec.sites:
            mux = netlist.gates[site.mux]
            assert mux.gtype is GateType.MUX
            sel, d0, d1 = mux.fanins
            assert sel == site.key_name
            # The correct key bit must select the true source.
            selected = d0 if site.key_bit == 0 else d1
            assert selected == site.true_src
            other = d1 if site.key_bit == 0 else d0
            assert other == site.false_src
            # The MUX drives the recorded consumer.
            assert site.mux in netlist.gates[site.consumer].fanins


def test_wires_used_once(dmux_locked):
    seen = set()
    for rec in dmux_locked.insertions:
        for wire in ((rec.f_i, rec.g_i), (rec.f_j, rec.g_j)):
            assert wire not in seen, f"wire {wire} locked twice"
            seen.add(wire)


def test_gene_validation_rules(c17):
    with pytest.raises(LockingError):
        MuxGene("a", "b", "c", "d", 2)  # bad key bit
    # Same drivers rejected.
    assert not gene_applicable(c17, MuxGene("G11", "G16", "G11", "G19", 0))
    # Same consumers rejected.
    assert not gene_applicable(c17, MuxGene("G10", "G22", "G16", "G22", 0))
    # Nonexistent wire rejected.
    assert not gene_applicable(c17, MuxGene("G1", "G23", "G11", "G19", 0))


def test_cycle_risk_rejected(c17):
    # G16 -> G23 wire and G10 -> G22: fine. But pairing a wire with a
    # consumer that reaches the other driver must be rejected:
    # G11 drives G16; G16 reaches G23. Pair (G3->G10... ) construct:
    # wire1 = (G16, G23), wire2 = (G3, G11): g_i=G23 does not reach f_j=G3,
    # g_j=G11 reaches f_i=G16? G11 -> G16 yes => cycle risk => reject.
    gene = MuxGene("G16", "G23", "G3", "G11", 0)
    assert not gene_applicable(c17, gene)
    with pytest.raises(LockingError, match="cycle"):
        apply_gene(c17.copy(), gene, "k0")


def test_apply_gene_key_bit_one(c17):
    work = c17.copy()
    gene = MuxGene("G10", "G22", "G19", "G23", 1)
    assert gene_applicable(work, gene)
    rec = apply_gene(work, gene, "k0")
    validate_netlist(work)
    # k=1: d1 must be the true source on both MUXes.
    mux_i = work.gates[rec.mux_i]
    assert mux_i.fanins == ("k0", "G19", "G10")
    res = check_equivalence(c17, work, key_right={"k0": 1}, seed_or_rng=0)
    assert res.equal
    res_wrong = check_equivalence(c17, work, key_right={"k0": 0}, seed_or_rng=0)
    assert not res_wrong.equal


def test_lockable_wires_excludes_key_machinery(dmux_locked):
    wires = lockable_wires(dmux_locked.netlist)
    mux_names = {
        g.name
        for g in dmux_locked.netlist.gates.values()
        if g.gtype is GateType.MUX
    }
    for src, dst in wires:
        assert src not in mux_names
        assert dst not in mux_names
        assert src not in dmux_locked.netlist.key_inputs


def test_sample_gene_respects_used_pins(rand100):
    used = set()
    rng_seed = 3
    gene = sample_gene(rand100, rng_seed, used_pins=used)
    assert gene is not None
    used.update(gene.wires)
    for _ in range(10):
        nxt = sample_gene(rand100, rng_seed, used_pins=used)
        assert nxt is not None
        assert not (set(nxt.wires) & used)
        used.update(nxt.wires)


def test_exhausted_sites_return_none(tiny):
    # tiny has very few wires; exhaust them.
    used = set(lockable_wires(tiny))
    assert sample_gene(tiny, 0, used_pins=used) is None


def test_determinism(rand100):
    a = DMuxLocking("shared").lock(rand100, 8, seed_or_rng=7)
    b = DMuxLocking("shared").lock(rand100, 8, seed_or_rng=7)
    assert a.netlist.structurally_equal(b.netlist)
    assert a.key == b.key


def test_original_untouched(rand100):
    before = rand100.copy()
    DMuxLocking("shared").lock(rand100, 8, seed_or_rng=1)
    assert rand100.structurally_equal(before)


@settings(max_examples=10, deadline=None)
@given(
    st.integers(min_value=40, max_value=100),
    st.integers(min_value=0, max_value=10**6),
    st.integers(min_value=1, max_value=10),
)
def test_equivalence_property(n_gates, seed, key_len):
    """Locked-with-correct-key ≡ original for arbitrary D-MUX lockings."""
    circuit = load_circuit(f"rand_{n_gates}_{seed}")
    try:
        locked = DMuxLocking("shared").lock(circuit, key_len, seed_or_rng=seed)
    except LockingError:
        return  # tiny circuits can legitimately run out of sites
    validate_netlist(locked.netlist)
    res = check_equivalence(
        circuit, locked.netlist, key_right=dict(locked.key),
        n_random=512, seed_or_rng=seed,
    )
    assert res.equal
