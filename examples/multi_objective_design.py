#!/usr/bin/env python3
"""Multi-objective locking design with NSGA-II.

The paper's research plan asks for "multi-objective optimization that
includes a set of distinct attacks". This example evolves lockings
against three simultaneous objectives — MuxLink accuracy, area overhead,
and SCOPE decision coverage — and prints the Pareto front so a designer
can pick their security/cost trade-off.

Run:  python examples/multi_objective_design.py [circuit] [K]
"""

import sys

from repro.circuits import load_circuit
from repro.ec import MultiObjectiveFitness, Nsga2, Nsga2Config
from repro.locking import lock_with_genes
from repro.metrics import overhead_report


def main() -> None:
    circuit_name = sys.argv[1] if len(sys.argv) > 1 else "c880_syn"
    key_length = int(sys.argv[2]) if len(sys.argv) > 2 else 16
    circuit = load_circuit(circuit_name)

    fitness = MultiObjectiveFitness(
        circuit,
        predictor="bayes",
        objectives=("muxlink", "depth", "corruption"),
        attack_seed=5,
    )
    config = Nsga2Config(
        key_length=key_length,
        population_size=16,
        generations=8,
        seed=13,
    )
    print(f"NSGA-II on {circuit_name} (K={key_length}): minimising "
          f"(muxlink_acc, depth_overhead, 1-corruption)")
    result = Nsga2(config).run(circuit, fitness)

    print("\nper-generation front progress:")
    for entry in result.history:
        best = ", ".join(f"{v:.3f}" for v in entry["best_per_objective"])
        print(f"  gen {entry['generation']:>2}: front={entry['front_size']:>3}  "
              f"best per objective: [{best}]")

    print(f"\nPareto front ({len(result.front_genotypes)} designs, "
          f"{result.evaluations} evaluations, {result.runtime_s:.1f}s):")
    print(f"{'#':>3} {'muxlink_acc':>12} {'depth_ovh':>10} {'1-corrupt':>10}   key")
    ordered = sorted(
        zip(result.front_objectives, result.front_genotypes), key=lambda t: t[0]
    )
    for i, (objs, genes) in enumerate(ordered):
        locked = lock_with_genes(circuit, genes)
        print(f"{i:>3} {objs[0]:>12.3f} {objs[1]:>9.3f} {objs[2]:>10.3f}   "
              f"{locked.key.bitstring}")

    # Inspect the most secure design in detail.
    best_objs, best_genes = ordered[0]
    locked = lock_with_genes(circuit, best_genes)
    report = overhead_report(
        circuit, locked.netlist, locked.key, "nsga2-champion",
        n_patterns=512, seed_or_rng=0,
    )
    print("\nmost secure front point:")
    print("  " + report.as_row())


if __name__ == "__main__":
    main()
