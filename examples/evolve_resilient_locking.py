#!/usr/bin/env python3
"""Full AutoLock evolution with convergence trace and design export.

The paper's headline experiment at a configurable budget, expressed as
one declarative :class:`~repro.api.ExperimentSpec`: evolve a MUX-based
locking against MuxLink on a chosen circuit, print the per-generation
convergence trace, re-evaluate the champion with an independent
ensembled attack, and export the evolved design (.bench + .lock.json +
structural Verilog) plus the run's JSONL/manifest artifacts for
downstream tooling.

Run:  python examples/evolve_resilient_locking.py [circuit] [K] [pop] [gens] [workers]
e.g.  python examples/evolve_resilient_locking.py c1908_syn 32 12 12 4

``workers >= 2`` fans fitness evaluation out across processes; results
are identical to the serial run. Attack evaluations — and the finished
experiment record itself — persist to
``evolved_designs/fitness_cache.json``: re-running the same
configuration costs zero fresh attacks (delete the file to start over).
"""

import sys
from pathlib import Path

from repro.api import ExperimentSpec, run_experiment
from repro.io import save_locked_design
from repro.netlist.verilog import write_verilog_file
from repro.sim import check_equivalence


def main() -> None:
    circuit_name = sys.argv[1] if len(sys.argv) > 1 else "c1355_syn"
    key_length = int(sys.argv[2]) if len(sys.argv) > 2 else 24
    population = int(sys.argv[3]) if len(sys.argv) > 3 else 10
    generations = int(sys.argv[4]) if len(sys.argv) > 4 else 10
    workers = int(sys.argv[5]) if len(sys.argv) > 5 else 1

    out_dir = Path("evolved_designs")
    spec = ExperimentSpec(
        circuit=circuit_name,
        key_length=key_length,
        attack="muxlink",
        attack_params={"predictor": "mlp"},
        engine="autolock",
        engine_params={
            "population_size": population,
            "generations": generations,
            "report_predictor": "mlp",
            "report_ensemble": 3,
        },
        seed=7,
        workers=workers,
        cache_path=str(out_dir / "fitness_cache.json"),
    )
    print(f"evolving {circuit_name} (K={key_length}, pop={population}, "
          f"gens={generations}, workers={workers})...")
    print(f"spec fingerprint: {spec.fingerprint()}")
    run = run_experiment(spec, out_dir=out_dir / "artifacts")

    if run.from_cache:
        rec = run.record["engine"]
        print("\nreplayed finished record from the experiment cache "
              "(0 fresh attack evaluations)")
        print(f"baseline {rec['baseline_accuracy']:.3f} -> "
              f"evolved {rec['evolved_accuracy']:.3f} "
              f"(drop {rec['accuracy_drop_pp']:+.1f} pp)")
    else:
        result = run.engine_result
        print("\nconvergence (fitness = MuxLink accuracy, lower is better):")
        print(f"{'gen':>4} {'best':>7} {'mean':>7} {'std':>7}")
        for stats in result.ga.history:
            print(f"{stats.generation:>4} {stats.best:>7.3f} "
                  f"{stats.mean:>7.3f} {stats.std:>7.3f}")
        print()
        print(result.summary())
        print(f"baseline population accuracies: "
              f"{[round(a, 3) for a in result.baseline_population_accuracies]}")
        print(f"fresh attack evaluations: {run.fresh_evaluations} "
              f"(cache hits: {run.cache_hits})")

    locked = run.rebuild_locked()
    equivalence = check_equivalence(
        locked.original,
        locked.netlist,
        key_right=dict(locked.key),
        seed_or_rng=0,
    )
    print(f"functional correctness: {equivalence.equal} ({equivalence.method})")

    sidecar = save_locked_design(locked, out_dir)
    verilog_path = out_dir / f"{locked.netlist.name}.v"
    write_verilog_file(locked.netlist, verilog_path)
    print(f"\nexported: {sidecar}")
    print(f"exported: {verilog_path}")
    print(f"artifacts: {out_dir / 'artifacts'} (results.jsonl + manifest.json)")


if __name__ == "__main__":
    main()
