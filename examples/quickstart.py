#!/usr/bin/env python3
"""Quickstart: lock a circuit, attack it, evolve a resilient locking.

Walks the three core capabilities in ~a minute of compute:

1. D-MUX-lock a benchmark circuit and verify functional correctness;
2. attack it with MuxLink (link prediction) and SCOPE (constant
   propagation);
3. run a miniature AutoLock evolution and compare attack accuracy
   before/after.

Run:  python examples/quickstart.py
"""

from repro.attacks import MuxLinkAttack, ScopeAttack
from repro.circuits import load_circuit
from repro.ec import AutoLock, AutoLockConfig
from repro.locking import DMuxLocking
from repro.netlist import compute_stats
from repro.sim import check_equivalence


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Load a benchmark circuit and lock it.
    # ------------------------------------------------------------------
    circuit = load_circuit("c880_syn")
    print("original:", compute_stats(circuit).as_row())

    locked = DMuxLocking("shared").lock(circuit, key_length=16, seed_or_rng=1)
    print("locked:  ", compute_stats(locked.netlist).as_row())
    print(f"correct key: {locked.key.bitstring}")

    equivalence = check_equivalence(
        circuit, locked.netlist, key_right=dict(locked.key), seed_or_rng=0
    )
    print(f"locked+correct key == original?  {equivalence.equal} "
          f"({equivalence.method}, {equivalence.n_patterns} patterns)")

    # ------------------------------------------------------------------
    # 2. Attack the randomly-placed locking.
    # ------------------------------------------------------------------
    muxlink = MuxLinkAttack(predictor="mlp", ensemble=2).run(locked, seed_or_rng=2)
    scope = ScopeAttack().run(locked, seed_or_rng=2)
    print()
    print("attacks on random D-MUX placement:")
    print(" ", muxlink.as_row())
    print(" ", scope.as_row())

    # ------------------------------------------------------------------
    # 3. Evolve a MuxLink-resilient locking (small budget for the demo).
    # ------------------------------------------------------------------
    print()
    print("running AutoLock (small demo budget)...")
    config = AutoLockConfig(
        key_length=16, population_size=8, generations=6, seed=3
    )
    result = AutoLock(config).run(circuit)
    print(result.summary())
    print(f"MuxLink accuracy: random placement {result.baseline_accuracy:.3f} "
          f"-> evolved {result.evolved_accuracy:.3f}")

    evolved_eq = check_equivalence(
        circuit,
        result.locked.netlist,
        key_right=dict(result.locked.key),
        seed_or_rng=0,
    )
    print(f"evolved design functionally correct? {evolved_eq.equal}")


if __name__ == "__main__":
    main()
