#!/usr/bin/env python3
"""Attack-matrix evaluation: every attack vs every scheme.

Reproduces the canonical comparison table of the logic-locking
literature on one circuit: XOR/XNOR RLL vs D-MUX (shared and two-key)
against the random-guess floor, SCOPE constant propagation, MuxLink
link prediction (all three predictor backends) and the oracle-guided
SAT attack, plus overhead and corruption columns.

Run:  python examples/attack_evaluation.py [circuit] [key_length]
"""

import sys

from repro.attacks import (
    MuxLinkAttack,
    RandomGuessAttack,
    SatAttack,
    ScopeAttack,
    SnapShotAttack,
)
from repro.circuits import load_circuit
from repro.locking import DMuxLocking, RandomLogicLocking
from repro.metrics import corruption_report, overhead_report


def main() -> None:
    circuit_name = sys.argv[1] if len(sys.argv) > 1 else "c880_syn"
    key_length = int(sys.argv[2]) if len(sys.argv) > 2 else 16
    circuit = load_circuit(circuit_name)

    schemes = {
        "rll": RandomLogicLocking(),
        "dmux-shared": DMuxLocking("shared"),
        "dmux-two_key": DMuxLocking("two_key"),
    }
    attacks = [
        RandomGuessAttack(),
        ScopeAttack(),
        SnapShotAttack(),
        MuxLinkAttack(predictor="bayes"),
        MuxLinkAttack(predictor="mlp", ensemble=2),
        MuxLinkAttack(predictor="gnn", epochs=8, n_train=150),
        SatAttack(max_iterations=256),
    ]

    print(f"attack matrix on {circuit_name}, K={key_length}")
    print("=" * 78)
    for scheme_name, scheme in schemes.items():
        locked = scheme.lock(circuit, key_length, seed_or_rng=11)
        print(f"\n--- scheme: {locked.scheme} ---")
        for attack in attacks:
            report = attack.run(locked, seed_or_rng=7)
            line = "  " + report.as_row()
            if "n_dips" in report.extra:
                line += f"  dips={report.extra['n_dips']}"
            print(line)
        overhead = overhead_report(
            circuit, locked.netlist, locked.key, locked.scheme,
            n_patterns=512, seed_or_rng=0,
        )
        corruption = corruption_report(
            locked, n_wrong_keys=6, n_patterns=512, seed_or_rng=0
        )
        print("  " + overhead.as_row())
        print("  " + corruption.as_row())


if __name__ == "__main__":
    main()
