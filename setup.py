"""Legacy setup shim.

The execution environment has no ``wheel`` package and no network access,
so PEP 517 editable installs fail with ``invalid command 'bdist_wheel'``.
This shim lets ``pip install -e . --no-use-pep517`` (configured as the pip
default in this environment) use the classic ``setup.py develop`` path.
All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
